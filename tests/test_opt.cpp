#include <gtest/gtest.h>

#include "helpers.hpp"
#include "opt/optimize.hpp"
#include "prob/probability.hpp"

namespace minpower {
namespace {

Cube lit(int v, bool pos = true) { return Cube::literal(v, pos); }

TEST(Eliminate, CollapsesSingleLiteralNode) {
  Network net("elim");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId t = net.add_inv(a, "t");     // value ≤ 0 node
  const NodeId f = net.add_and2(t, b, "f");
  net.add_po("out", f);
  Network orig = net.duplicate();
  const int n = eliminate(net, 0);
  EXPECT_GE(n, 1);
  net.check();
  EXPECT_TRUE(networks_equivalent(orig, net));
  // t is gone; f computes !a·b directly.
  EXPECT_EQ(net.find("t"), kNoNode);
}

TEST(Eliminate, KeepsPoDrivers) {
  Network net("podriver");
  const NodeId a = net.add_pi("a");
  const NodeId t = net.add_inv(a, "t");
  net.add_po("out", t);
  eliminate(net, 100);
  EXPECT_NE(net.find("t"), kNoNode);
}

TEST(Eliminate, RespectsValueThreshold) {
  // t = a·b + c·d feeding two AND readers. Substituting t duplicates its
  // 4 literals at both readers: value = 2·(6−2) − 4 = +4 — kept at
  // threshold 0, collapsed once the threshold admits the growth.
  auto build = [] {
    Network net("thresh");
    const NodeId a = net.add_pi("a");
    const NodeId b = net.add_pi("b");
    const NodeId c = net.add_pi("c");
    const NodeId d = net.add_pi("d");
    const NodeId e = net.add_pi("e");
    const NodeId f = net.add_pi("f");
    Cover tc{{lit(0) & lit(1), lit(2) & lit(3)}};
    const NodeId t = net.add_node({a, b, c, d}, tc, "t");
    net.add_po("o1", net.add_and2(t, e, "f1"));
    net.add_po("o2", net.add_and2(t, f, "f2"));
    return net;
  };
  Network keep = build();
  eliminate(keep, 0);
  EXPECT_NE(keep.find("t"), kNoNode);  // above threshold: kept
  Network gone = build();
  eliminate(gone, 4);
  EXPECT_EQ(gone.find("t"), kNoNode);  // now collapsed
  gone.check();
}

TEST(CubeExtract, FindsSharedCube) {
  Network net("fx");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId c = net.add_pi("c");
  const NodeId d = net.add_pi("d");
  // Three nodes all containing the cube a·b.
  const NodeId f1 = net.add_node({a, b, c}, Cover{{lit(0) & lit(1) & lit(2)}}, "f1");
  const NodeId f2 = net.add_node({a, b, d}, Cover{{lit(0) & lit(1) & lit(2)}}, "f2");
  const NodeId f3 = net.add_node({a, b}, Cover{{lit(0) & lit(1)}}, "f3");
  net.add_po("o1", f1);
  net.add_po("o2", f2);
  net.add_po("o3", f3);
  Network orig = net.duplicate();
  const int created = extract_cube_divisors(net);
  EXPECT_GE(created, 1);
  net.check();
  EXPECT_TRUE(networks_equivalent(orig, net));
}

TEST(KernelExtract, FindsSharedKernel) {
  Network net("kx");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId c = net.add_pi("c");
  const NodeId d = net.add_pi("d");
  const NodeId e = net.add_pi("e");
  // f1 = (a+b)·c·d, f2 = (a+b)·e — kernel (a+b) shared.
  Cover f1c{{lit(0) & lit(2) & lit(3), lit(1) & lit(2) & lit(3)}};
  Cover f2c{{lit(0) & lit(2), lit(1) & lit(2)}};
  const NodeId f1 = net.add_node({a, b, c, d}, f1c, "f1");
  const NodeId f2 = net.add_node({a, b, e}, f2c, "f2");
  net.add_po("o1", f1);
  net.add_po("o2", f2);
  Network orig = net.duplicate();
  const int created = extract_kernel_divisors(net);
  EXPECT_GE(created, 1);
  net.check();
  EXPECT_TRUE(networks_equivalent(orig, net));
  // Literal count must not have grown.
  EXPECT_LE(net.num_literals(), orig.num_literals());
}

TEST(QuickDecompose, SplitsWideNodes) {
  Network net("wide");
  std::vector<NodeId> pis;
  for (int i = 0; i < 6; ++i) pis.push_back(net.add_pi("p" + std::to_string(i)));
  Cover wide;
  for (int i = 0; i < 6; ++i) wide.add(lit(i));
  const NodeId f = net.add_node(pis, wide, "f");
  net.add_po("out", f);
  Network orig = net.duplicate();
  const int split = quick_decompose(net, 3);
  EXPECT_GE(split, 1);
  net.check();
  EXPECT_TRUE(networks_equivalent(orig, net));
  for (NodeId id = 0; id < static_cast<NodeId>(net.capacity()); ++id)
    if (net.node(id).is_internal())
      EXPECT_LE(net.node(id).cover.num_cubes(), 3u);
}

// Property: the whole rugged-lite script preserves function on random nets.
class RuggedProperty : public ::testing::TestWithParam<int> {};

TEST_P(RuggedProperty, PreservesFunction) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Network net = testing::random_network(seed + 500, 7, 18, 4);
  Network orig = net.duplicate();
  const OptStats stats = rugged_lite(net);
  (void)stats;
  net.check();
  EXPECT_TRUE(networks_equivalent(orig, net)) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Random, RuggedProperty, ::testing::Range(0, 30));

TEST(PowerExtract, PrefersLowActivityDivisors) {
  // Two divisor candidates with equal share counts: (a·b) with skewed
  // probabilities (low activity when exposed) and (c·d) with p=0.5 inputs
  // (maximum activity). The power-aware extractor must pick the former
  // first.
  Network net("px");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId c = net.add_pi("c");
  const NodeId d = net.add_pi("d");
  const NodeId e = net.add_pi("e");
  auto three_users = [&](NodeId x, NodeId y, const char* prefix) {
    for (int k = 0; k < 3; ++k) {
      Cover cover{{lit(0) & lit(1) & lit(2)}};
      net.add_po(std::string(prefix) + std::to_string(k),
                 net.add_node({x, y, e}, cover,
                              std::string(prefix) + "n" + std::to_string(k)));
    }
  };
  three_users(a, b, "ab");
  three_users(c, d, "cd");

  PowerOptOptions o;
  o.pi_prob1 = {0.95, 0.9, 0.5, 0.5, 0.5};  // a·b is a quiet net; c·d is not
  o.beta = 2.0;
  o.max_rounds = 1;  // only the single best divisor
  Network orig = net.duplicate();
  const int created = extract_cube_divisors_power(net, o);
  ASSERT_EQ(created, 1);
  EXPECT_TRUE(networks_equivalent(orig, net));
  // The created divisor reads a and b.
  const NodeId px = net.find("px_0") != kNoNode ? net.find("px_0") : kNoNode;
  ASSERT_NE(px, kNoNode);
  const auto& fi = net.node(px).fanins;
  EXPECT_TRUE((fi[0] == a && fi[1] == b) || (fi[0] == b && fi[1] == a));
}

TEST(PowerExtract, RuggedPowerPreservesFunction) {
  for (std::uint64_t seed = 600; seed < 610; ++seed) {
    Network net = testing::random_network(seed, 7, 18, 4);
    Network orig = net.duplicate();
    rugged_lite_power(net);
    net.check();
    EXPECT_TRUE(networks_equivalent(orig, net)) << seed;
  }
}

TEST(PowerExtract, BetaZeroActsLikeCountGreedy) {
  // With beta = 0 the score reduces to occurrences − 2, the same ordering
  // the plain extractor uses; both must find a divisor on a shareable net.
  Network net("beta0");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId c = net.add_pi("c");
  for (int k = 0; k < 3; ++k) {
    Cover cover{{lit(0) & lit(1) & lit(2)}};
    net.add_po("o" + std::to_string(k),
               net.add_node({a, b, c}, cover, "u" + std::to_string(k)));
  }
  PowerOptOptions o;
  o.beta = 0.0;
  EXPECT_GE(extract_cube_divisors_power(net, o), 1);
  net.check();
}

TEST(Rugged, TendsToReduceLiterals) {
  // Aggregate over seeds: optimization should not systematically grow the
  // networks it claims to optimize.
  long before = 0;
  long after = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Network net = testing::random_network(seed + 900, 7, 20, 4);
    before += net.num_literals();
    rugged_lite(net);
    after += net.num_literals();
  }
  EXPECT_LE(after, before);
}

}  // namespace
}  // namespace minpower
