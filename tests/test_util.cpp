#include <gtest/gtest.h>

#include <set>

#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

namespace minpower {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.02);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues reached
}

TEST(Rng, RangeInclusive) {
  Rng rng(5);
  bool hit_lo = false;
  bool hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo |= v == -3;
    hit_hi |= v == 3;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(RunningStats, Moments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.1380899, 1e-6);
}

TEST(RunningStats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(GeoMean, MatchesHandComputation) {
  GeoMean g;
  g.add(2.0);
  g.add(8.0);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
}

TEST(GeoMean, EmptyIsOne) {
  GeoMean g;
  EXPECT_DOUBLE_EQ(g.value(), 1.0);
}

TEST(PercentChange, Basics) {
  EXPECT_DOUBLE_EQ(percent_change(100.0, 112.0), 12.0);
  EXPECT_DOUBLE_EQ(percent_change(100.0, 78.0), -22.0);
  EXPECT_DOUBLE_EQ(percent_change(0.0, 5.0), 0.0);
}

TEST(Strings, SplitWs) {
  const auto f = split_ws("  a\tbb  ccc \n");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[1], "bb");
  EXPECT_EQ(f[2], "ccc");
}

TEST(Strings, SplitEmpty) {
  EXPECT_TRUE(split_ws("").empty());
  EXPECT_TRUE(split_ws(" \t ").empty());
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x y "), "x y");
  EXPECT_EQ(trim("\t\n"), "");
  EXPECT_EQ(trim("abc"), "abc");
}

TEST(Strings, ParseDouble) {
  EXPECT_EQ(parse_double("1.5"), 1.5);
  EXPECT_EQ(parse_double("-2"), -2.0);
  EXPECT_FALSE(parse_double("1.5x").has_value());
  EXPECT_FALSE(parse_double("").has_value());
}

TEST(Strings, ParseLong) {
  EXPECT_EQ(parse_long("42"), 42);
  EXPECT_FALSE(parse_long("4.2").has_value());
}

}  // namespace
}  // namespace minpower
