// End-to-end pipeline invariants: every stage of the full flow chained on
// real suite circuits, checking function preservation, determinism, and
// cross-stage consistency — the tests a release gets run against.

#include <gtest/gtest.h>

#include "benchgen/benchgen.hpp"
#include "decomp/network_decompose.hpp"
#include "flow/flow.hpp"
#include "io/blif.hpp"
#include "io/mapped_blif.hpp"
#include "map/mapper.hpp"
#include "power/report.hpp"
#include "power/resize.hpp"
#include "power/simulate.hpp"
#include "prob/probability.hpp"
#include "util/rng.hpp"

namespace minpower {
namespace {

class PipelineTest : public ::testing::TestWithParam<const char*> {};

TEST_P(PipelineTest, FullChainPreservesFunction) {
  Network raw = make_benchmark(GetParam());
  if (raw.num_internal() == 0) GTEST_SKIP();
  Network original = raw.duplicate();

  // 1. Technology-independent optimization.
  prepare_network(raw);
  ASSERT_TRUE(networks_equivalent(original, raw));
  if (raw.num_internal() == 0) GTEST_SKIP();

  // 2. MINPOWER NAND decomposition.
  NetworkDecompOptions d;
  d.algorithm = DecompAlgorithm::kMinPower;
  const Network subject = decompose_network(raw, d).network;
  ASSERT_TRUE(networks_equivalent(original, subject));

  // 3. Power-delay mapping.
  MapOptions m;
  const MapResult r = map_network(subject, standard_library(), m);
  r.mapped.check();

  // 4. Resize.
  MappedNetwork mapped = r.mapped;
  ResizeOptions ro;
  ro.power = PowerParams::from(m);
  downsize_gates(mapped, ro);

  // 5. Mapped-BLIF round trip.
  const ParsedMappedNetwork back = read_mapped_blif_string(
      write_mapped_blif_string(mapped), standard_library());

  // The re-read mapped netlist must still implement the ORIGINAL circuit.
  ASSERT_TRUE(networks_equivalent(original, *back.subject)) << GetParam();
}

TEST_P(PipelineTest, FlowIsDeterministic) {
  Network a = make_benchmark(GetParam());
  Network b = make_benchmark(GetParam());
  prepare_network(a);
  prepare_network(b);
  if (a.num_internal() == 0) GTEST_SKIP();
  const FlowResult ra = run_method(a, Method::kV, standard_library());
  const FlowResult rb = run_method(b, Method::kV, standard_library());
  EXPECT_DOUBLE_EQ(ra.power_uw, rb.power_uw);
  EXPECT_DOUBLE_EQ(ra.area, rb.area);
  EXPECT_DOUBLE_EQ(ra.delay, rb.delay);
  EXPECT_EQ(ra.gates, rb.gates);
}

INSTANTIATE_TEST_SUITE_P(Suite, PipelineTest,
                         ::testing::Values("s208", "x2", "cm42a", "s344",
                                           "ttt2", "alu2"));

TEST(Integration, AllSixMethodsPreserveFunction) {
  Network net = make_benchmark("x2");
  Network original = net.duplicate();
  prepare_network(net);
  for (Method method : {Method::kI, Method::kII, Method::kIII, Method::kIV,
                        Method::kV, Method::kVI}) {
    // run_method does not expose the mapped netlist; rebuild its stages.
    NetworkDecompOptions d;
    switch (method) {
      case Method::kI:
      case Method::kIV:
        d.algorithm = DecompAlgorithm::kBalanced;
        break;
      default:
        d.algorithm = DecompAlgorithm::kMinPower;
        d.bounded_height =
            method == Method::kIII || method == Method::kVI;
        break;
    }
    const Network subject = decompose_network(net, d).network;
    MapOptions m;
    m.objective = (method == Method::kI || method == Method::kII ||
                   method == Method::kIII)
                      ? MapObjective::kArea
                      : MapObjective::kPower;
    const MapResult r = map_network(subject, standard_library(), m);
    // Gate-level simulation vs the original on random vectors.
    Rng rng(static_cast<std::uint64_t>(method) + 5);
    for (int t = 0; t < 30; ++t) {
      std::vector<bool> pi(subject.pis().size());
      for (std::size_t i = 0; i < pi.size(); ++i) pi[i] = rng.coin();
      EXPECT_EQ(r.mapped.eval(pi), subject.eval(pi))
          << method_name(method);
    }
  }
}

TEST(Integration, ReportAndSimulationAgreeOnScale) {
  // Zero-delay report and the glitch-aware simulation measure the same
  // netlist; simulation includes glitches so it reads higher, but the two
  // must be within a small factor (they share loads and marginals).
  Network net = make_benchmark("s344");
  prepare_network(net);
  NetworkDecompOptions d;
  const Network subject = decompose_network(net, d).network;
  MapOptions m;
  const MapResult r = map_network(subject, standard_library(), m);
  const MappedReport rep = evaluate_mapped(r.mapped, PowerParams::from(m));
  SimPowerParams sp;
  sp.base = PowerParams::from(m);
  sp.num_vector_pairs = 300;
  const SimPowerReport sim = simulate_power(r.mapped, sp);
  EXPECT_NEAR(sim.zero_delay_uw, rep.power_uw, 1e-6);
  EXPECT_GT(sim.power_uw, 0.5 * rep.power_uw);
  EXPECT_LT(sim.power_uw, 5.0 * rep.power_uw);
}

TEST(Integration, BlifRoundTripThroughWholeSuite) {
  for (const BenchProfile& p : paper_suite()) {
    if (p.name == "x3") continue;  // big; covered by the bench run
    Network net = generate_benchmark(p);
    Network back = read_blif_string(write_blif_string(net));
    EXPECT_TRUE(networks_equivalent(net, back)) << p.name;
  }
}

TEST(Integration, MappedAreaAccountsEveryGate) {
  Network net = make_benchmark("s208");
  prepare_network(net);
  NetworkDecompOptions d;
  const Network subject = decompose_network(net, d).network;
  MapOptions m;
  const MapResult r = map_network(subject, standard_library(), m);
  double area = 0.0;
  for (const MappedGateInst& g : r.mapped.gates) area += g.gate->area;
  EXPECT_DOUBLE_EQ(area, r.mapped.total_area());
  const MappedReport rep = evaluate_mapped(r.mapped, PowerParams::from(m));
  EXPECT_DOUBLE_EQ(rep.area, area);
  EXPECT_EQ(rep.num_gates, r.mapped.gates.size());
}

}  // namespace
}  // namespace minpower
