#include <gtest/gtest.h>

#include <algorithm>

#include "benchgen/benchgen.hpp"
#include "flow/flow.hpp"
#include "io/blif.hpp"
#include "prob/probability.hpp"

namespace minpower {
namespace {

TEST(Benchgen, DeterministicGeneration) {
  Network a = make_benchmark("s208");
  Network b = make_benchmark("s208");
  EXPECT_EQ(write_blif_string(a), write_blif_string(b));
}

TEST(Benchgen, SuiteHasSeventeenCircuits) {
  EXPECT_EQ(paper_suite().size(), 17u);
  // All names from the paper's tables are present.
  for (const char* name :
       {"s208", "s344", "s382", "s444", "s510", "s526", "s641", "s713",
        "s820", "cm42a", "x1", "x2", "x3", "ttt2", "apex7", "alu2", "ex2"}) {
    bool found = false;
    for (const auto& p : paper_suite()) found |= p.name == name;
    EXPECT_TRUE(found) << name;
  }
}

TEST(Benchgen, ProfilesAreRespected) {
  for (const auto& p : paper_suite()) {
    Network net = generate_benchmark(p);
    net.check();
    EXPECT_EQ(net.pis().size(), static_cast<std::size_t>(p.num_pi)) << p.name;
    EXPECT_LE(net.pos().size(), static_cast<std::size_t>(p.num_po)) << p.name;
    EXPECT_GE(net.pos().size(), 1u) << p.name;
    EXPECT_GT(net.num_internal(), 0u) << p.name;
    for (NodeId id = 0; id < static_cast<NodeId>(net.capacity()); ++id) {
      const Node& n = net.node(id);
      if (!n.is_internal()) continue;
      EXPECT_LE(static_cast<int>(n.fanins.size()), p.max_fanin);
      EXPECT_LE(static_cast<int>(n.cover.num_cubes()), p.max_cubes);
      EXPECT_FALSE(n.cover.is_zero());
      EXPECT_FALSE(n.cover.is_one());
    }
  }
}

TEST(Benchgen, NetworksAreConnectedToPos) {
  // After sweep (inside generate), every internal node reaches a PO.
  Network net = make_benchmark("x2");
  for (NodeId id = 0; id < static_cast<NodeId>(net.capacity()); ++id) {
    const Node& n = net.node(id);
    if (n.is_internal()) EXPECT_GE(net.fanout_count(id), 1);
  }
}

TEST(Benchgen, DifferentSeedsDiffer) {
  BenchProfile a = paper_suite()[0];
  BenchProfile b = a;
  b.seed += 1;
  EXPECT_NE(write_blif_string(generate_benchmark(a)),
            write_blif_string(generate_benchmark(b)));
}

TEST(Benchgen, UnknownNameAborts) {
  EXPECT_DEATH(make_benchmark("nonesuch"), "unknown benchmark");
}

TEST(Benchgen, RoundTripsThroughBlif) {
  Network net = make_benchmark("cm42a");
  Network back = read_blif_string(write_blif_string(net));
  EXPECT_TRUE(networks_equivalent(net, back));
}

TEST(ScaleFamilies, ThreeCanonicalFamilies) {
  ASSERT_EQ(scale_families().size(), 3u);
  for (const char* f : {"chain", "cone", "mesh"}) {
    EXPECT_TRUE(is_scale_family(f)) << f;
  }
  EXPECT_FALSE(is_scale_family("nonesuch"));
}

TEST(ScaleFamilies, SeedDeterminismByteIdenticalBlif) {
  for (const std::string& family : scale_families()) {
    ScaleProfile p;
    p.family = family;
    p.target_gates = 200;
    p.seed = 42;
    EXPECT_EQ(write_blif_string(generate_scale_benchmark(p)),
              write_blif_string(generate_scale_benchmark(p)))
        << family;
    ScaleProfile q = p;
    q.seed = 43;
    EXPECT_NE(write_blif_string(generate_scale_benchmark(p)),
              write_blif_string(generate_scale_benchmark(q)))
        << family;
  }
}

TEST(ScaleFamilies, AcyclicByConstruction) {
  // Node ids are assigned in creation order and fanins must pre-exist, so
  // fanin-id < node-id is a structural proof of acyclicity.
  for (const std::string& family : scale_families()) {
    ScaleProfile p;
    p.family = family;
    p.target_gates = 300;
    p.seed = 7;
    Network net = generate_scale_benchmark(p);
    net.check();
    for (NodeId id = 0; id < static_cast<NodeId>(net.capacity()); ++id) {
      const Node& n = net.node(id);
      if (!n.is_internal()) continue;
      for (NodeId f : n.fanins) EXPECT_LT(f, id) << family;
    }
  }
}

TEST(ScaleFamilies, GateCountTracksTarget) {
  for (const std::string& family : scale_families()) {
    for (const std::size_t target : {100u, 400u, 1200u}) {
      ScaleProfile p;
      p.family = family;
      p.target_gates = target;
      p.seed = 5;
      const Network net = generate_scale_benchmark(p);
      const double gates = static_cast<double>(net.num_internal());
      EXPECT_GE(gates, 0.75 * static_cast<double>(target))
          << family << ":" << target;
      EXPECT_LE(gates, 1.25 * static_cast<double>(target))
          << family << ":" << target;
      EXPECT_EQ(net.name(),
                family + "-" + std::to_string(target));
    }
  }
}

TEST(ScaleFamilies, SmallInstancesSurviveOptimizationEquivalently) {
  // BDD-equivalence spot check via the verify-layer oracle: the rugged-lite
  // preparation pass must preserve each family's function, and the BLIF
  // round trip must too.
  for (const std::string& family : scale_families()) {
    ScaleProfile p;
    p.family = family;
    p.target_gates = 60;
    p.seed = 9;
    const Network net = generate_scale_benchmark(p);
    Network prepared = net;
    prepare_network(prepared);
    EXPECT_TRUE(networks_equivalent(net, prepared)) << family;
    const Network back = read_blif_string(write_blif_string(net));
    EXPECT_TRUE(networks_equivalent(net, back)) << family;
  }
}

TEST(ScaleFamilies, UnknownFamilyAborts) {
  ScaleProfile p;
  p.family = "nonesuch";
  EXPECT_DEATH(generate_scale_benchmark(p), "unknown scale family");
}

TEST(Pla, GeneratesTwoLevelCircuit) {
  PlaProfile p;
  p.num_pi = 8;
  p.num_outputs = 5;
  p.cubes_per_output = 4;
  p.seed = 7;
  Network net = generate_pla(p);
  net.check();
  EXPECT_EQ(net.pis().size(), 8u);
  EXPECT_EQ(net.pos().size(), 5u);
  EXPECT_EQ(net.num_internal(), 5u);  // one SOP node per output
  for (NodeId id = 0; id < static_cast<NodeId>(net.capacity()); ++id)
    if (net.node(id).is_internal())
      for (NodeId f : net.node(id).fanins)
        EXPECT_TRUE(net.node(f).is_pi());  // strictly two-level
}

TEST(Pla, Deterministic) {
  PlaProfile p;
  p.seed = 3;
  EXPECT_EQ(write_blif_string(generate_pla(p)),
            write_blif_string(generate_pla(p)));
}

TEST(Pla, OutputsShareLiteralPairs) {
  // The point of the PLA generator: distinct outputs read the same PIs, so
  // cube extraction has shared divisors to find.
  PlaProfile p;
  p.num_pi = 6;
  p.num_outputs = 8;
  p.cubes_per_output = 6;
  p.literal_density = 0.6;
  p.seed = 11;
  Network net = generate_pla(p);
  int max_pi_fanout = 0;
  for (NodeId pi : net.pis())
    max_pi_fanout = std::max(max_pi_fanout,
                             static_cast<int>(net.node(pi).fanouts.size()));
  EXPECT_GE(max_pi_fanout, 3);
}

}  // namespace
}  // namespace minpower
