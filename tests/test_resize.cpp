#include <gtest/gtest.h>

#include "decomp/network_decompose.hpp"
#include "helpers.hpp"
#include "power/resize.hpp"
#include "util/rng.hpp"

namespace minpower {
namespace {

TEST(EquivalentCells, InverterFamily) {
  const Library& lib = standard_library();
  const auto cells = equivalent_cells(lib, *lib.find("inv2"));
  ASSERT_GE(cells.size(), 3u);  // inv1, inv2, inv4
  for (const Gate* g : cells) EXPECT_EQ(g->num_inputs(), 1);
}

TEST(EquivalentCells, Nand2IsNotNor2) {
  const Library& lib = standard_library();
  const auto cells = equivalent_cells(lib, *lib.find("nand2"));
  for (const Gate* g : cells) EXPECT_NE(g->name, "nor2");
}

MapResult map_circuit(std::uint64_t seed, Network& subject_out,
                      RequiredTimePolicy policy) {
  Network raw = testing::random_network(seed, 6, 14, 3);
  NetworkDecompOptions d;
  subject_out = decompose_network(raw, d).network;
  MapOptions o;
  o.policy = policy;
  // Bias toward larger drive choices by mapping for minimum delay, leaving
  // room for the resizer to downsize.
  o.objective = MapObjective::kArea;
  return map_network(subject_out, standard_library(), o);
}

TEST(Resize, NeverDegradesPowerOrViolatesTiming) {
  for (std::uint64_t seed = 900; seed < 908; ++seed) {
    Network subject;
    MapResult r = map_circuit(seed, subject, RequiredTimePolicy::kMinDelay);
    if (r.mapped.gates.empty()) continue;
    ResizeOptions o;
    const ResizeResult res = downsize_gates(r.mapped, o);
    EXPECT_LE(res.power_after, res.power_before + 1e-9) << seed;
    // Required times default to the starting arrivals: delay must not grow.
    EXPECT_LE(res.delay_after, res.delay_before + 1e-9) << seed;
  }
}

TEST(Resize, PreservesFunction) {
  for (std::uint64_t seed = 910; seed < 915; ++seed) {
    Network subject;
    MapResult r = map_circuit(seed, subject, RequiredTimePolicy::kMinDelay);
    if (r.mapped.gates.empty()) continue;
    // Record behaviour before.
    Rng rng(seed);
    std::vector<std::vector<bool>> vectors;
    std::vector<std::vector<bool>> expected;
    for (int t = 0; t < 40; ++t) {
      std::vector<bool> pi(subject.pis().size());
      for (std::size_t i = 0; i < pi.size(); ++i) pi[i] = rng.coin();
      expected.push_back(r.mapped.eval(pi));
      vectors.push_back(std::move(pi));
    }
    ResizeOptions o;
    downsize_gates(r.mapped, o);
    r.mapped.check();
    for (std::size_t t = 0; t < vectors.size(); ++t)
      EXPECT_EQ(r.mapped.eval(vectors[t]), expected[t]) << seed;
  }
}

TEST(Resize, LooseRequiredTimesAllowMoreSwaps) {
  Network subject;
  MapResult tight_map =
      map_circuit(77, subject, RequiredTimePolicy::kMinDelay);
  Network subject2;
  MapResult loose_map =
      map_circuit(77, subject2, RequiredTimePolicy::kMinDelay);
  if (tight_map.mapped.gates.empty()) GTEST_SKIP();

  ResizeOptions tight;  // required = starting arrivals
  const ResizeResult rt = downsize_gates(tight_map.mapped, tight);

  ResizeOptions loose;
  loose.po_required.assign(loose_map.mapped.po_signal.size(), 1e9);
  const ResizeResult rl = downsize_gates(loose_map.mapped, loose);

  EXPECT_LE(rl.power_after, rt.power_after + 1e-9);
  EXPECT_GE(rl.swaps, rt.swaps);
}

TEST(Resize, ReportsConsistentNumbers) {
  Network subject;
  MapResult r = map_circuit(88, subject, RequiredTimePolicy::kMinDelay);
  if (r.mapped.gates.empty()) GTEST_SKIP();
  ResizeOptions o;
  const ResizeResult res = downsize_gates(r.mapped, o);
  const MappedReport now = evaluate_mapped(r.mapped, o.power);
  EXPECT_NEAR(res.power_after, now.power_uw, 1e-9);
  EXPECT_NEAR(res.delay_after, now.delay, 1e-9);
}

}  // namespace
}  // namespace minpower
