// report/baseline: flow-report loading, cell-by-cell QoR compare semantics
// (exact lock, tolerance, slowdown band, subset skip, require_all), registry
// diffing, and histogram percentile estimation (DESIGN.md §11).

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "flow/flow_engine.hpp"
#include "helpers.hpp"
#include "report/baseline.hpp"
#include "trace/metrics.hpp"

namespace minpower {
namespace {

using report::CompareOptions;
using report::CompareReport;
using report::FlowReportDoc;
using report::HistSnapshot;
using report::QorCell;
using report::Verdict;

/// A minimal two-circuit report with non-trivial phase times.
FlowReportDoc small_doc() {
  FlowReportDoc doc;
  doc.path = "doc.json";
  doc.library = "paperlib";
  doc.num_threads = 2;
  doc.elapsed_ms = 100.0;
  doc.circuits = {"alpha", "beta"};
  const char* methods[] = {"I", "II"};
  for (const std::string& c : doc.circuits)
    for (const char* m : methods) {
      QorCell cell;
      cell.circuit = c;
      cell.method = m;
      cell.state = "ok";
      cell.area = 1000.0;
      cell.delay_ns = 5.25;
      cell.power_uw = 211.34703457355499;
      cell.gates = 42.0;
      cell.decomp_ms = 10.0;
      cell.activity_ms = 4.0;
      cell.map_ms = 20.0;
      cell.eval_ms = 0.25;  // below the 1 ms floor — never gated
      doc.cells.push_back(cell);
    }
  doc.counters = {{"map.matches", 1234}, {"decomp.nodes", 77}};
  doc.gauges = {{"pool.threads", 2}};
  HistSnapshot h;
  h.name = "map.match_us";
  h.count = 20;
  h.sum = 500;
  h.buckets = {{1, 3}, {8, 17}};
  doc.histograms = {h};
  return doc;
}

const report::CellResult* find_cell(const CompareReport& r,
                                    const std::string& circuit,
                                    const std::string& method) {
  for (const report::CellResult& c : r.cells)
    if (c.circuit == circuit && c.method == method) return &c;
  return nullptr;
}

TEST(Compare, IdenticalReportsPass) {
  const FlowReportDoc doc = small_doc();
  const CompareReport r =
      report::compare_flow_reports(doc, doc, CompareOptions{});
  EXPECT_FALSE(r.regression());
  EXPECT_EQ(r.ok, 4);
  EXPECT_EQ(r.skipped, 0);
  EXPECT_TRUE(r.metrics_checked);
  EXPECT_TRUE(r.counter_diffs.empty());
  EXPECT_FALSE(r.elapsed_slow);
}

TEST(Compare, OneUlpPowerDriftFailsExactLockAndNamesTheCell) {
  const FlowReportDoc base = small_doc();
  FlowReportDoc cand = base;
  cand.cells[1].power_uw =
      std::nextafter(cand.cells[1].power_uw, 1e9);  // alpha / II, +1 ulp
  const CompareReport r =
      report::compare_flow_reports(base, cand, CompareOptions{});
  EXPECT_TRUE(r.regression());
  EXPECT_EQ(r.qor_regressed, 1);
  const report::CellResult* cell = find_cell(r, "alpha", "II");
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->verdict, Verdict::kQorRegressed);
  ASSERT_EQ(cell->deltas.size(), 1u);
  EXPECT_EQ(cell->deltas[0].metric, "power_uw");
  // The offending cell is named in the printed verdict table.
  std::ostringstream os;
  report::print_compare(os, r);
  EXPECT_NE(os.str().find("alpha"), std::string::npos);
  EXPECT_NE(os.str().find("power_uw"), std::string::npos);
}

TEST(Compare, ImprovementAlsoFailsTheExactLock) {
  const FlowReportDoc base = small_doc();
  FlowReportDoc cand = base;
  cand.cells[2].area -= 1.0;  // beta / I got better
  const CompareReport r =
      report::compare_flow_reports(base, cand, CompareOptions{});
  EXPECT_TRUE(r.regression());
  EXPECT_EQ(r.qor_improved, 1);
  EXPECT_EQ(find_cell(r, "beta", "I")->verdict, Verdict::kQorImproved);
}

TEST(Compare, ToleranceAdmitsSmallDrift) {
  const FlowReportDoc base = small_doc();
  FlowReportDoc cand = base;
  cand.cells[0].power_uw *= 1.0 + 1e-12;
  CompareOptions opt;
  opt.qor_rel_tol = 1e-9;
  const CompareReport r = report::compare_flow_reports(base, cand, opt);
  EXPECT_FALSE(r.regression());
  EXPECT_EQ(r.ok, 4);
}

TEST(Compare, DoubledPhaseTimeFailsTheSlowdownBand) {
  const FlowReportDoc base = small_doc();
  FlowReportDoc cand = base;
  cand.cells[3].map_ms *= 2.0;  // beta / II: 20 ms → 40 ms, band is +20%
  const CompareReport r =
      report::compare_flow_reports(base, cand, CompareOptions{});
  EXPECT_TRUE(r.regression());
  EXPECT_EQ(r.slow, 1);
  const report::CellResult* cell = find_cell(r, "beta", "II");
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->verdict, Verdict::kSlow);
  ASSERT_EQ(cell->deltas.size(), 1u);
  EXPECT_EQ(cell->deltas[0].metric, "map_ms");
}

TEST(Compare, SpeedupAndSubFloorTimesNeverFail) {
  const FlowReportDoc base = small_doc();
  FlowReportDoc cand = base;
  cand.cells[0].map_ms /= 4.0;    // big speedup — fine
  cand.cells[1].eval_ms *= 10.0;  // 0.25 ms → 2.5 ms, but base < floor
  cand.elapsed_ms *= 0.5;
  const CompareReport r =
      report::compare_flow_reports(base, cand, CompareOptions{});
  EXPECT_FALSE(r.regression());
}

TEST(Compare, NegativeBandDisablesAllTimeChecks) {
  const FlowReportDoc base = small_doc();
  FlowReportDoc cand = base;
  cand.cells[3].map_ms *= 50.0;
  cand.elapsed_ms *= 50.0;
  CompareOptions opt;
  opt.time_band = -1.0;
  const CompareReport r = report::compare_flow_reports(base, cand, opt);
  EXPECT_FALSE(r.regression());
}

TEST(Compare, ElapsedSlowdownGates) {
  const FlowReportDoc base = small_doc();
  FlowReportDoc cand = base;
  cand.elapsed_ms = base.elapsed_ms * 2.0;
  const CompareReport r =
      report::compare_flow_reports(base, cand, CompareOptions{});
  EXPECT_TRUE(r.elapsed_slow);
  EXPECT_TRUE(r.regression());
}

TEST(Compare, StatusChangeFails) {
  const FlowReportDoc base = small_doc();
  FlowReportDoc cand = base;
  cand.cells[1].state = "degraded";
  const CompareReport r =
      report::compare_flow_reports(base, cand, CompareOptions{});
  EXPECT_TRUE(r.regression());
  EXPECT_EQ(r.status_changed, 1);
  EXPECT_EQ(find_cell(r, "alpha", "II")->verdict, Verdict::kStatusChanged);
}

TEST(Compare, SubsetCandidateSkipsWithoutFailing) {
  const FlowReportDoc base = small_doc();
  FlowReportDoc cand = base;
  // Candidate ran only "alpha".
  cand.circuits = {"alpha"};
  cand.cells.resize(2);
  const CompareReport r =
      report::compare_flow_reports(base, cand, CompareOptions{});
  EXPECT_FALSE(r.regression());
  EXPECT_EQ(r.ok, 2);
  EXPECT_EQ(r.skipped, 2);
  // Registry totals cover different work — must be skipped, not diffed.
  EXPECT_FALSE(r.metrics_checked);
  EXPECT_FALSE(r.metrics_skip_reason.empty());
  EXPECT_FALSE(r.elapsed_slow);

  CompareOptions strict;
  strict.require_all = true;
  EXPECT_TRUE(report::compare_flow_reports(base, cand, strict).regression());
}

TEST(Compare, CandidateOnlyCellsAreNewAndNeverFail) {
  const FlowReportDoc cand = small_doc();
  FlowReportDoc base = cand;
  base.circuits = {"alpha"};
  base.cells.resize(2);
  const CompareReport r =
      report::compare_flow_reports(base, cand, CompareOptions{});
  EXPECT_FALSE(r.regression());
  EXPECT_EQ(r.added, 2);
  EXPECT_EQ(find_cell(r, "beta", "I")->verdict, Verdict::kNew);
}

TEST(Compare, CounterDriftFails) {
  const FlowReportDoc base = small_doc();
  FlowReportDoc cand = base;
  cand.counters[0].second += 1;
  const CompareReport r =
      report::compare_flow_reports(base, cand, CompareOptions{});
  EXPECT_TRUE(r.regression());
  ASSERT_EQ(r.counter_diffs.size(), 1u);
  EXPECT_EQ(r.counter_diffs[0].name, "map.matches");
  EXPECT_EQ(r.counter_diffs[0].base, 1234u);
  EXPECT_EQ(r.counter_diffs[0].cand, 1235u);
}

TEST(Compare, HistogramDriftReportsPercentileShift) {
  const FlowReportDoc base = small_doc();
  FlowReportDoc cand = base;
  cand.histograms[0].count = 25;
  cand.histograms[0].buckets = {{1, 3}, {8, 17}, {64, 5}};
  const CompareReport r =
      report::compare_flow_reports(base, cand, CompareOptions{});
  EXPECT_TRUE(r.regression());
  ASSERT_EQ(r.histogram_diffs.size(), 1u);
  EXPECT_EQ(r.histogram_diffs[0].name, "map.match_us");
  EXPECT_EQ(r.histogram_diffs[0].base_p99, 8u);
  EXPECT_EQ(r.histogram_diffs[0].cand_p99, 64u);
}

TEST(Compare, HistogramPercentileNearestRank) {
  HistSnapshot h;
  h.count = 20;
  h.buckets = {{1, 3}, {8, 17}};
  // rank(0.5) = 10th sample → second bucket.
  EXPECT_EQ(report::histogram_percentile(h, 0.50), 8u);
  // rank(0.1) = 2nd sample → first bucket.
  EXPECT_EQ(report::histogram_percentile(h, 0.10), 1u);
  EXPECT_EQ(report::histogram_percentile(h, 0.99), 8u);
  EXPECT_EQ(report::histogram_percentile(h, 1.0), 8u);

  HistSnapshot empty;
  EXPECT_EQ(report::histogram_percentile(empty, 0.5), 0u);

  HistSnapshot zero;
  zero.count = 5;
  zero.buckets = {{0, 5}};
  EXPECT_EQ(report::histogram_percentile(zero, 0.5), 0u);
}

TEST(Compare, RoundTripsThroughFlowJson) {
  // End to end: engine run → write_flow_json → load_flow_report → compare
  // with itself must be clean, and the parsed document must carry the run's
  // shape.
  std::vector<Network> nets;
  for (std::uint64_t seed : {91u, 92u}) {
    Network net = testing::random_network(seed, 7, 16, 3);
    prepare_network(net);
    nets.push_back(std::move(net));
  }
  std::vector<const Network*> circuits;
  for (const Network& n : nets) circuits.push_back(&n);
  FlowEngine engine(standard_library());
  const auto results = engine.run_suite(circuits);

  std::ostringstream os;
  write_flow_json(os, results, engine.counters(), engine.effective_threads(),
                  12.5, standard_library().name());

  FlowReportDoc doc;
  std::string error;
  ASSERT_TRUE(report::load_flow_report(os.str(), "run.json", &doc, &error))
      << error;
  EXPECT_EQ(doc.circuits.size(), circuits.size());
  EXPECT_EQ(doc.cells.size(), circuits.size() * 6);
  EXPECT_EQ(doc.library, standard_library().name());
  EXPECT_EQ(doc.elapsed_ms, 12.5);
  EXPECT_FALSE(doc.counters.empty());

  const CompareReport r =
      report::compare_flow_reports(doc, doc, CompareOptions{});
  EXPECT_FALSE(r.regression());
  EXPECT_EQ(r.ok, static_cast<int>(doc.cells.size()));

  std::ostringstream cj;
  report::write_compare_json(cj, r);
  EXPECT_NE(cj.str().find("minpower.compare.v1"), std::string::npos);
}

TEST(Compare, LoaderRejectsWrongSchema) {
  FlowReportDoc doc;
  std::string error;
  EXPECT_FALSE(report::load_flow_report("{}", "x", &doc, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(report::load_flow_report(
      R"({"schema": "minpower.bench.v1"})", "x", &doc, &error));
  EXPECT_FALSE(report::load_flow_report("not json", "x", &doc, &error));
}

}  // namespace
}  // namespace minpower
