#include <gtest/gtest.h>

#include "decomp/network_decompose.hpp"
#include "helpers.hpp"
#include "power/report.hpp"

namespace minpower {
namespace {

TEST(PowerReport, HandComputedSingleGate) {
  // One AND2 gate driving a PO of 2.0 unit loads; PIs a, b with p = 0.5.
  Network net("one");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId n = net.add_nand2(a, b);
  const NodeId i = net.add_inv(n);
  net.add_po("f", i);

  MapOptions o;
  const MapResult r = map_network(net, standard_library(), o);
  const MappedReport rep = evaluate_mapped(r.mapped, PowerParams::from(o));

  // Expect the and2 cover: one gate, area 3.
  ASSERT_EQ(rep.num_gates, 1u);
  EXPECT_DOUBLE_EQ(rep.area, 3.0);

  // Power: PI nets a and b each drive one and2 pin (cap 1.0), activity 0.5;
  // the output net has load 2.0 with p(and)=0.25 → E = 2·0.25·0.75 = 0.375.
  const double scale = 0.5 * kUnitCapFarads * 25.0 / 50e-9 * 1e6;  // per unit·E
  const double want = scale * (1.0 * 0.5 + 1.0 * 0.5 + 2.0 * 0.375);
  EXPECT_NEAR(rep.power_uw, want, 1e-9);

  // Delay: and2 pin intrinsic 0.90 + drive 0.35 × load 2.0 = 1.6 ns.
  EXPECT_NEAR(rep.delay, 0.90 + 0.35 * 2.0, 1e-9);
}

TEST(PowerReport, DelayUsesActualLoads) {
  // Inverter chain: inv driving inv driving PO. First inverter's delay must
  // use the second inverter's input cap, not the default load.
  Network net("chain");
  const NodeId a = net.add_pi("a");
  const NodeId i1 = net.add_inv(a);
  const NodeId i2 = net.add_inv(i1);
  const NodeId i3 = net.add_inv(i2);
  net.add_po("f", i3);

  MapOptions o;
  o.policy = RequiredTimePolicy::kUnconstrained;
  const MapResult r = map_network(net, standard_library(), o);
  const MappedReport rep = evaluate_mapped(r.mapped, PowerParams::from(o));
  ASSERT_EQ(rep.num_gates, 3u);
  // All inv1 when unconstrained (cheapest): delay = 2 × (0.40 + 0.45·1.0)
  // + (0.40 + 0.45·2.0) for the PO stage.
  EXPECT_NEAR(rep.delay, 2 * (0.40 + 0.45 * 1.0) + (0.40 + 0.45 * 2.0), 1e-9);
}

TEST(PowerReport, PowerScalesWithClockAndVdd) {
  Network raw = testing::random_network(7, 6, 12, 3);
  NetworkDecompOptions d;
  Network net = decompose_network(raw, d).network;
  MapOptions o;
  const MapResult r = map_network(net, standard_library(), o);

  PowerParams base = PowerParams::from(o);
  const double p0 = evaluate_mapped(r.mapped, base).power_uw;

  PowerParams faster = base;
  faster.t_cycle = base.t_cycle / 2.0;  // 40 MHz
  EXPECT_NEAR(evaluate_mapped(r.mapped, faster).power_uw, 2.0 * p0, 1e-6);

  PowerParams lower_v = base;
  lower_v.vdd = base.vdd / 2.0;
  EXPECT_NEAR(evaluate_mapped(r.mapped, lower_v).power_uw, p0 / 4.0, 1e-6);
}

TEST(PowerReport, DynamicStyleChangesPower) {
  Network raw = testing::random_network(8, 6, 12, 3);
  NetworkDecompOptions d;
  Network net = decompose_network(raw, d).network;
  MapOptions o;
  const MapResult r = map_network(net, standard_library(), o);
  PowerParams st = PowerParams::from(o);
  PowerParams dyn = st;
  dyn.style = CircuitStyle::kDynamicP;
  // Different activity model → different number (almost surely).
  EXPECT_NE(evaluate_mapped(r.mapped, st).power_uw,
            evaluate_mapped(r.mapped, dyn).power_uw);
}

TEST(PowerReport, PoArrivalPerOutput) {
  Network raw = testing::random_network(9, 6, 12, 4);
  NetworkDecompOptions d;
  Network net = decompose_network(raw, d).network;
  MapOptions o;
  const MapResult r = map_network(net, standard_library(), o);
  const MappedReport rep = evaluate_mapped(r.mapped, PowerParams::from(o));
  ASSERT_EQ(rep.po_arrival.size(), net.pos().size());
  double worst = 0.0;
  for (double t : rep.po_arrival) worst = std::max(worst, t);
  EXPECT_DOUBLE_EQ(rep.delay, worst);
}

TEST(PowerReport, PiArrivalShiftsDelay) {
  Network net("arr");
  const NodeId a = net.add_pi("a");
  const NodeId i1 = net.add_inv(a);
  net.add_po("f", i1);
  MapOptions o;
  const MapResult r = map_network(net, standard_library(), o);
  PowerParams p = PowerParams::from(o);
  const double d0 = evaluate_mapped(r.mapped, p).delay;
  p.pi_arrival = {3.0};
  EXPECT_NEAR(evaluate_mapped(r.mapped, p).delay, d0 + 3.0, 1e-9);
}

}  // namespace
}  // namespace minpower
