// Malformed-BLIF corpus: every entry must produce a structured BlifError
// (no crash, no abort) from try_read_blif, with the message and line the
// parser promises. read_blif keeps its abort-with-diagnostic contract.

#include <gtest/gtest.h>

#include <string>

#include "io/blif.hpp"

namespace minpower {
namespace {

BlifError expect_error(const std::string& text) {
  BlifError error;
  const auto net = try_read_blif_string(text, &error);
  EXPECT_FALSE(net.has_value()) << "parser accepted malformed input:\n"
                                << text;
  return error;
}

TEST(BlifMalformed, TruncatedNamesHeader) {
  const BlifError e = expect_error(
      ".model t\n"
      ".inputs a\n"
      ".outputs y\n"
      ".names\n"
      "1 1\n"
      ".end\n");
  EXPECT_NE(e.message.find(".names needs at least an output"),
            std::string::npos);
  EXPECT_EQ(e.line, 4);
}

TEST(BlifMalformed, CoverRowOutsideNames) {
  const BlifError e = expect_error(
      ".model t\n"
      ".inputs a b\n"
      ".outputs y\n"
      "11 1\n");
  EXPECT_NE(e.message.find("outside .names"), std::string::npos);
  EXPECT_EQ(e.line, 4);
}

TEST(BlifMalformed, RowWidthMismatch) {
  const BlifError e = expect_error(
      ".model t\n"
      ".inputs a b\n"
      ".outputs y\n"
      ".names a b y\n"
      "101 1\n"
      ".end\n");
  EXPECT_NE(e.message.find("width mismatch"), std::string::npos);
  EXPECT_EQ(e.line, 5);
}

TEST(BlifMalformed, RowMissingOutputValue) {
  // "11" alone: the last field is read as the output column, so the polarity
  // check is what rejects it.
  const BlifError e = expect_error(
      ".model t\n"
      ".inputs a b\n"
      ".outputs y\n"
      ".names a b y\n"
      "11\n"
      ".end\n");
  EXPECT_NE(e.message.find("output column must be 0 or 1"), std::string::npos);
  EXPECT_EQ(e.line, 5);
}

TEST(BlifMalformed, RowWithExtraFields) {
  const BlifError e = expect_error(
      ".model t\n"
      ".inputs a b\n"
      ".outputs y\n"
      ".names a b y\n"
      "1 1 1\n"
      ".end\n");
  EXPECT_NE(e.message.find("pattern + value"), std::string::npos);
  EXPECT_EQ(e.line, 5);
}

TEST(BlifMalformed, BadCoverLiteral) {
  const BlifError e = expect_error(
      ".model t\n"
      ".inputs a b\n"
      ".outputs y\n"
      ".names a b y\n"
      "1x 1\n"
      ".end\n");
  EXPECT_NE(e.message.find("must be 0/1/-"), std::string::npos);
}

TEST(BlifMalformed, BadOutputColumn) {
  const BlifError e = expect_error(
      ".model t\n"
      ".inputs a\n"
      ".outputs y\n"
      ".names a y\n"
      "1 2\n"
      ".end\n");
  EXPECT_NE(e.message.find("output column must be 0 or 1"), std::string::npos);
}

TEST(BlifMalformed, MixedOnAndOffSet) {
  const BlifError e = expect_error(
      ".model t\n"
      ".inputs a b\n"
      ".outputs y\n"
      ".names a b y\n"
      "11 1\n"
      "00 0\n"
      ".end\n");
  EXPECT_NE(e.message.find("mixes ON-set and OFF-set"), std::string::npos);
}

TEST(BlifMalformed, SignalDrivenTwice) {
  const BlifError e = expect_error(
      ".model t\n"
      ".inputs a b\n"
      ".outputs y\n"
      ".names a y\n"
      "1 1\n"
      ".names b y\n"
      "1 1\n"
      ".end\n");
  EXPECT_NE(e.message.find("driven twice: y"), std::string::npos);
  EXPECT_EQ(e.line, 6);
}

TEST(BlifMalformed, DuplicateInputDeclaration) {
  const BlifError e = expect_error(
      ".model t\n"
      ".inputs a a\n"
      ".outputs y\n"
      ".names a y\n"
      "1 1\n"
      ".end\n");
  EXPECT_NE(e.message.find("input declared twice: a"), std::string::npos);
}

TEST(BlifMalformed, UndrivenOutput) {
  const BlifError e = expect_error(
      ".model t\n"
      ".inputs a\n"
      ".outputs y z\n"
      ".names a y\n"
      "1 1\n"
      ".end\n");
  EXPECT_NE(e.message.find("output is undriven: z"), std::string::npos);
}

TEST(BlifMalformed, CombinationalCycle) {
  const BlifError e = expect_error(
      ".model t\n"
      ".inputs a\n"
      ".outputs y\n"
      ".names a y2 y\n"
      "11 1\n"
      ".names y y2\n"
      "1 1\n"
      ".end\n");
  EXPECT_NE(e.message.find("cycle"), std::string::npos);
  EXPECT_EQ(e.line, 4);  // first stuck gate
}

TEST(BlifMalformed, UndefinedFaninSignal) {
  const BlifError e = expect_error(
      ".model t\n"
      ".inputs a\n"
      ".outputs y\n"
      ".names a ghost y\n"
      "11 1\n"
      ".end\n");
  EXPECT_NE(e.message.find("undefined signals"), std::string::npos);
  EXPECT_NE(e.message.find("first stuck output: y"), std::string::npos);
}

TEST(BlifMalformed, LatchMissingOutput) {
  const BlifError e = expect_error(
      ".model t\n"
      ".inputs a\n"
      ".outputs y\n"
      ".latch a\n"
      ".names a y\n"
      "1 1\n"
      ".end\n");
  EXPECT_NE(e.message.find(".latch needs input and output"),
            std::string::npos);
}

TEST(BlifMalformed, UndrivenLatchInput) {
  const BlifError e = expect_error(
      ".model t\n"
      ".inputs a\n"
      ".outputs y\n"
      ".latch ghost s\n"
      ".names a y\n"
      "1 1\n"
      ".end\n");
  EXPECT_NE(e.message.find("latch input is undriven: ghost"),
            std::string::npos);
}

TEST(BlifMalformed, OversizedCubeLine) {
  // 80-input .names: pattern bits would overflow the 64-variable Cube.
  std::string text = ".model t\n.inputs";
  std::string names = ".names";
  std::string row;
  for (int i = 0; i < 80; ++i) {
    text += " i" + std::to_string(i);
    names += " i" + std::to_string(i);
    row += '1';
  }
  text += "\n.outputs y\n" + names + " y\n" + row + " 1\n.end\n";
  const BlifError e = expect_error(text);
  EXPECT_NE(e.message.find("at most 64"), std::string::npos);
}

TEST(BlifMalformed, OffSetCoverTooWide) {
  // A 30-input OFF-set cover would abort inside Cover::complement; the
  // parser must reject it up front.
  std::string text = ".model t\n.inputs";
  std::string names = ".names";
  std::string row;
  for (int i = 0; i < 30; ++i) {
    text += " i" + std::to_string(i);
    names += " i" + std::to_string(i);
    row += '1';
  }
  text += "\n.outputs y\n" + names + " y\n" + row + " 0\n.end\n";
  const BlifError e = expect_error(text);
  EXPECT_NE(e.message.find("complement limit"), std::string::npos);
}

TEST(BlifMalformed, TruncatedContinuation) {
  const BlifError e = expect_error(
      ".model t\n"
      ".inputs a b\n"
      ".outputs y\n"
      ".names a b \\");  // EOF inside the continuation
  EXPECT_NE(e.message.find("continuation runs into end of file"),
            std::string::npos);
  EXPECT_EQ(e.line, 4);
}

TEST(BlifMalformed, ErrorToStringIncludesLine) {
  BlifError e;
  e.message = "boom";
  e.line = 7;
  EXPECT_EQ(e.to_string(), "line 7: boom");
  e.line = 0;
  EXPECT_EQ(e.to_string(), "boom");
}

// ---- well-formed edge cases that must keep parsing ------------------------

TEST(BlifMalformed, MissingEndIsTolerated) {
  const auto net = try_read_blif_string(
      ".model t\n"
      ".inputs a\n"
      ".outputs y\n"
      ".names a y\n"
      "1 1\n");  // no .end
  ASSERT_TRUE(net.has_value());
  EXPECT_EQ(net->pis().size(), 1u);
  EXPECT_EQ(net->pos().size(), 1u);
}

TEST(BlifMalformed, ContinuationAndCommentsStillWork) {
  const auto net = try_read_blif_string(
      ".model t  # model header\n"
      ".inputs a \\\n"
      "        b\n"
      ".outputs y\n"
      ".names a b y   # and gate\n"
      "11 1\n"
      ".end\n");
  ASSERT_TRUE(net.has_value());
  EXPECT_EQ(net->pis().size(), 2u);
}

TEST(BlifMalformed, NullErrorPointerIsSafe) {
  EXPECT_FALSE(try_read_blif_string(".names\n").has_value());
}

TEST(BlifMalformed, ReadBlifStillAbortsWithDiagnostic) {
  EXPECT_DEATH(read_blif_string(".model t\n.inputs a\n.outputs y\n"
                                ".names a y\n1 1\n.names a y\n1 1\n.end\n"),
               "driven twice");
}

}  // namespace
}  // namespace minpower
