#include <gtest/gtest.h>

#include "helpers.hpp"
#include "netlist/network.hpp"

namespace minpower {
namespace {

Network small_and_or() {
  // f = (a·b) + c
  Network net("tiny");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId c = net.add_pi("c");
  const NodeId ab = net.add_and2(a, b, "ab");
  const NodeId f = net.add_or2(ab, c, "f");
  net.add_po("out", f);
  return net;
}

TEST(Network, ConstructionAndCounts) {
  Network net = small_and_or();
  net.check();
  EXPECT_EQ(net.pis().size(), 3u);
  EXPECT_EQ(net.pos().size(), 1u);
  EXPECT_EQ(net.num_internal(), 2u);
  EXPECT_EQ(net.depth(), 2);
}

TEST(Network, Eval) {
  Network net = small_and_or();
  EXPECT_FALSE(net.eval({false, false, false})[0]);
  EXPECT_TRUE(net.eval({true, true, false})[0]);
  EXPECT_TRUE(net.eval({false, false, true})[0]);
  EXPECT_FALSE(net.eval({true, false, false})[0]);
}

TEST(Network, FanoutBookkeeping) {
  Network net = small_and_or();
  const NodeId a = net.find("a");
  const NodeId ab = net.find("ab");
  EXPECT_EQ(net.node(a).fanouts.size(), 1u);
  EXPECT_EQ(net.fanout_count(ab), 1);
  EXPECT_EQ(net.po_refs(net.find("f")), 1);
  EXPECT_EQ(net.fanout_count(net.find("f")), 1);
}

TEST(Network, TopoOrderRespectsEdges) {
  Network net = small_and_or();
  const auto order = net.topo_order();
  std::vector<int> position(net.capacity(), -1);
  for (std::size_t i = 0; i < order.size(); ++i)
    position[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
  for (NodeId id = 0; id < static_cast<NodeId>(net.capacity()); ++id)
    for (NodeId f : net.node(id).fanins)
      EXPECT_LT(position[static_cast<std::size_t>(f)],
                position[static_cast<std::size_t>(id)]);
}

TEST(Network, ReplaceEverywhere) {
  Network net = small_and_or();
  const NodeId c = net.find("c");
  const NodeId ab = net.find("ab");
  // Rewire the OR's 'c' input to read 'ab' instead.
  net.replace_everywhere(c, ab);
  net.check();
  EXPECT_TRUE(net.node(c).fanouts.empty());
  EXPECT_EQ(net.fanout_count(ab), 2);
}

TEST(Network, SweepRemovesDeadLogic) {
  Network net = small_and_or();
  const NodeId a = net.find("a");
  const NodeId b = net.find("b");
  net.add_and2(a, b, "dead");  // not reachable from any PO
  EXPECT_EQ(net.num_internal(), 3u);
  const int removed = net.sweep();
  EXPECT_GE(removed, 1);
  EXPECT_EQ(net.num_internal(), 2u);
  net.check();
}

TEST(Network, SweepCollapsesBuffers) {
  Network net("buf");
  const NodeId a = net.add_pi("a");
  const NodeId b1 = net.add_buf(a, "b1");
  const NodeId b2 = net.add_buf(b1, "b2");
  net.add_po("out", b2);
  net.sweep();
  net.check();
  EXPECT_EQ(net.num_internal(), 0u);
  EXPECT_EQ(net.pos()[0].driver, a);
}

TEST(Network, SweepPropagatesConstantCover) {
  Network net("konst");
  const NodeId a = net.add_pi("a");
  // Node with tautological cover: f = a + !a is normalized to 1 by cover
  // construction only if normalize is called; build explicitly:
  Cover c{{Cube::one()}};
  const NodeId one = net.add_node({a}, c, "one");
  net.add_po("out", one);
  net.sweep();
  net.check();
  EXPECT_EQ(net.num_internal(), 0u);
  EXPECT_EQ(net.node(net.pos()[0].driver).kind, NodeKind::kConstant1);
}

TEST(Network, DuplicateIsIndependent) {
  Network net = small_and_or();
  Network copy = net.duplicate();
  copy.add_pi("extra");
  EXPECT_EQ(net.pis().size(), 3u);
  EXPECT_EQ(copy.pis().size(), 4u);
  EXPECT_EQ(copy.find("ab"), net.find("ab"));  // ids preserved
}

TEST(Network, SubjectGraphPredicates) {
  Network net("subject");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId n = net.add_nand2(a, b);
  const NodeId i = net.add_inv(n);
  net.add_po("out", i);
  EXPECT_TRUE(net.is_nand2(n));
  EXPECT_TRUE(net.is_inv(i));
  EXPECT_FALSE(net.is_inv(n));
  EXPECT_TRUE(net.is_nand_network());

  const NodeId o = net.add_or2(a, b);
  net.add_po("out2", o);
  EXPECT_FALSE(net.is_nand_network());
}

TEST(Network, UnitDepths) {
  Network net = small_and_or();
  const auto d = net.unit_depths();
  EXPECT_EQ(d[static_cast<std::size_t>(net.find("a"))], 0);
  EXPECT_EQ(d[static_cast<std::size_t>(net.find("ab"))], 1);
  EXPECT_EQ(d[static_cast<std::size_t>(net.find("f"))], 2);
}

TEST(Network, FreshNamesAreUnique) {
  Network net("names");
  net.add_pi("n_0");  // collides with the generator's first pick
  const std::string f1 = net.fresh_name("n");
  const std::string f2 = net.fresh_name("n");
  EXPECT_NE(f1, "n_0");
  EXPECT_NE(f1, f2);
}

TEST(Network, EvalMatchesTruthTableOnRandomNetworks) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Network net = testing::random_network(seed, 5, 10, 2);
    // Exhaustive truth table is self-consistent with repeated evals.
    const auto tables = testing::truth_tables(net);
    ASSERT_EQ(tables.size(), net.pos().size());
    EXPECT_EQ(tables[0].size(), 32u);
  }
}

TEST(Network, RemoveNodeRequiresNoReaders) {
  Network net = small_and_or();
  const NodeId f = net.find("f");
  // 'f' drives a PO; removing the PO reference first is required. Retarget
  // the PO to another node, then removal must succeed.
  net.set_po_driver(0, net.find("ab"));
  net.remove_node(f);
  net.check();
  EXPECT_EQ(net.num_internal(), 1u);
}

}  // namespace
}  // namespace minpower
