// Unit tests for the scale-trajectory trend gate (src/report/trend.hpp):
// JSONL parsing with torn-tail tolerance, log2-log2 slope fits, per-point
// ratio bands, slope-drift bands, and the minpower.trend.v1 document.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "report/trend.hpp"
#include "util/json_reader.hpp"

namespace minpower::report {
namespace {

/// One schema-stamped trajectory line with the given scaling metrics.
std::string line(const std::string& family, std::uint64_t target,
                 double gates, double wall_ms, double rss_kb,
                 double bdd_bytes) {
  std::ostringstream os;
  os << "{\"schema\":\"minpower.bench_trajectory.v1\",\"family\":\"" << family
     << "\",\"seed\":1,\"target_gates\":" << target << ",\"gates\":" << gates
     << ",\"suite\":1,\"threads\":1,\"shards\":2,\"wall_ms\":" << wall_ms
     << ",\"peak_bdd_nodes\":10,\"peak_bdd_node_bytes\":" << bdd_bytes
     << ",\"peak_bdd_arena_bytes\":" << bdd_bytes
     << ",\"peak_rss_kb\":" << rss_kb
     << ",\"degradations\":0,\"failures\":0,\"retries\":0}";
  return os.str();
}

/// A clean power-law family: wall ~ gates^time_exp, rss ~ gates^rss_exp.
TrajectoryDoc power_law(const std::string& family, double time_exp,
                        double rss_exp, double scale = 1.0) {
  TrajectoryDoc doc;
  doc.path = "synthetic";
  std::string text;
  for (const std::uint64_t g : {100ull, 300ull, 1000ull, 3000ull}) {
    const double gd = static_cast<double>(g);
    text += line(family, g, gd, scale * 0.01 * std::pow(gd, time_exp),
                 scale * 10.0 * std::pow(gd, rss_exp),
                 scale * 100.0 * std::pow(gd, rss_exp)) +
            "\n";
  }
  std::string error;
  EXPECT_TRUE(load_trajectory(text, "synthetic", &doc, &error)) << error;
  return doc;
}

TEST(Trend, LoadParsesPointsAndDropsTornTail) {
  const std::string text = line("chain", 100, 100, 50, 1000, 4000) + "\n" +
                           line("chain", 300, 300, 200, 3000, 12000) + "\n" +
                           "{\"schema\":\"minpower.bench_trajectory.v1\",\"fam";
  TrajectoryDoc doc;
  std::string error;
  ASSERT_TRUE(load_trajectory(text, "t.jsonl", &doc, &error)) << error;
  ASSERT_EQ(doc.points.size(), 2u);
  EXPECT_EQ(doc.points[0].family, "chain");
  EXPECT_EQ(doc.points[1].target_gates, 300u);
  EXPECT_DOUBLE_EQ(doc.points[1].wall_ms, 200.0);
}

TEST(Trend, LoadRejectsMalformedInteriorLine) {
  const std::string text = "not json\n" + line("chain", 100, 100, 50, 1, 1);
  TrajectoryDoc doc;
  std::string error;
  EXPECT_FALSE(load_trajectory(text, "t.jsonl", &doc, &error));
  EXPECT_NE(error.find("t.jsonl"), std::string::npos);
}

TEST(Trend, SlopeFitRecoversPowerLawExponent) {
  const TrajectoryDoc doc = power_law("chain", 2.0, 1.0);
  const TrendReport r = analyze_trend(doc, nullptr, TrendOptions{});
  ASSERT_EQ(r.families.size(), 1u);
  const FamilyTrend& f = r.families[0];
  EXPECT_EQ(f.family, "chain");
  EXPECT_EQ(f.points, 4);
  ASSERT_TRUE(f.time.available);
  EXPECT_NEAR(f.time.slope, 2.0, 1e-9);
  ASSERT_TRUE(f.rss.available);
  EXPECT_NEAR(f.rss.slope, 1.0, 1e-9);
  ASSERT_TRUE(f.bdd_bytes.available);
  EXPECT_NEAR(f.bdd_bytes.slope, 1.0, 1e-9);
  EXPECT_FALSE(r.regression());  // no baseline, fits only
}

TEST(Trend, MatchingBaselinePassesInsideBands) {
  const TrajectoryDoc base = power_law("chain", 1.2, 1.0);
  const TrajectoryDoc cand = power_law("chain", 1.2, 1.0, /*scale=*/1.1);
  const TrendReport r = analyze_trend(cand, &base, TrendOptions{});
  EXPECT_EQ(r.matched_points, 4);
  EXPECT_FALSE(r.regression());  // +10% inside the default 25% bands
}

TEST(Trend, SlowerPointRegressesOnWallTime) {
  const TrajectoryDoc base = power_law("chain", 1.2, 1.0);
  TrajectoryDoc cand = power_law("chain", 1.2, 1.0);
  cand.points.back().wall_ms *= 1.6;  // +60% at the largest size
  const TrendReport r = analyze_trend(cand, &base, TrendOptions{});
  ASSERT_EQ(r.point_regressions.size(), 1u);
  const TrendDelta& d = r.point_regressions[0];
  EXPECT_EQ(d.metric, "wall_ms");
  EXPECT_EQ(d.family, "chain");
  EXPECT_EQ(d.target_gates, 3000u);
  EXPECT_GT(d.cand, d.base);
  EXPECT_TRUE(r.regression());
}

TEST(Trend, MemoryBandCatchesRssGrowth) {
  const TrajectoryDoc base = power_law("mesh", 1.0, 1.0);
  TrajectoryDoc cand = power_law("mesh", 1.0, 1.0);
  for (TrajectoryPoint& p : cand.points) p.peak_rss_kb *= 1.5;
  const TrendReport r = analyze_trend(cand, &base, TrendOptions{});
  ASSERT_EQ(r.point_regressions.size(), 4u);
  for (const TrendDelta& d : r.point_regressions)
    EXPECT_EQ(d.metric, "peak_rss_kb");
}

TEST(Trend, TimeFloorIgnoresNoiseAtTinySizes) {
  TrajectoryDoc base = power_law("cone", 1.0, 1.0);
  TrajectoryDoc cand = power_law("cone", 1.0, 1.0);
  // Both sides under the 5 ms floor: a 3x ratio is timer noise, not signal.
  base.points[0].wall_ms = 1.0;
  cand.points[0].wall_ms = 3.0;
  const TrendReport r = analyze_trend(cand, &base, TrendOptions{});
  EXPECT_FALSE(r.regression());
}

TEST(Trend, SlopeDriftRegressesUnderTightenedBand) {
  // Same smallest point, superlinear drift above it: complexity-class
  // regression that generous per-point bands at small sizes would miss.
  const TrajectoryDoc base = power_law("chain", 1.0, 1.0);
  const TrajectoryDoc cand = power_law("chain", 1.5, 1.0);
  TrendOptions loose;
  loose.time_band = 1e9;  // disarm per-point checks; isolate the slope gate
  loose.mem_band = 1e9;
  loose.slope_band = 0.15;
  const TrendReport r = analyze_trend(cand, &base, loose);
  ASSERT_EQ(r.slope_regressions.size(), 1u);
  EXPECT_EQ(r.slope_regressions[0].metric, "wall_ms_slope");
  // JSONL round-trips through 6-significant-digit text, so fits are only
  // good to ~1e-4.
  EXPECT_NEAR(r.slope_regressions[0].base, 1.0, 1e-4);
  EXPECT_NEAR(r.slope_regressions[0].cand, 1.5, 1e-4);

  TrendOptions wide = loose;
  wide.slope_band = 0.75;  // widened band tolerates the same drift
  EXPECT_FALSE(analyze_trend(cand, &base, wide).regression());
}

TEST(Trend, UnmatchedFamiliesAndPointsAreIgnored) {
  const TrajectoryDoc base = power_law("chain", 1.0, 1.0);
  TrajectoryDoc cand = power_law("mesh", 3.0, 2.0);  // no chain twin at all
  const TrendReport r = analyze_trend(cand, &base, TrendOptions{});
  EXPECT_EQ(r.matched_points, 0);
  EXPECT_FALSE(r.regression());
}

TEST(Trend, TrendJsonIsValidAndCarriesRegressions) {
  const TrajectoryDoc base = power_law("chain", 1.0, 1.0);
  TrajectoryDoc cand = power_law("chain", 1.0, 1.0);
  cand.points.back().wall_ms *= 2.0;
  const TrendReport r = analyze_trend(cand, &base, TrendOptions{});
  ASSERT_TRUE(r.regression());

  std::ostringstream os;
  write_trend_json(os, r);
  std::string error;
  const auto doc = parse_json(os.str(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const JsonValue* schema = doc->find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->string, "minpower.trend.v1");
  const JsonValue* summary = doc->find("summary");
  ASSERT_NE(summary, nullptr);
  const JsonValue* verdict = summary->find("verdict");
  ASSERT_NE(verdict, nullptr);
  EXPECT_EQ(verdict->string, "regression");
  const JsonValue* points = doc->find("point_regressions");
  ASSERT_NE(points, nullptr);
  ASSERT_EQ(points->items.size(), 1u);
  const JsonValue* metric = points->items[0].find("metric");
  ASSERT_NE(metric, nullptr);
  EXPECT_EQ(metric->string, "wall_ms");

  // The human-readable table names the offender too.
  std::ostringstream table;
  print_trend(table, r);
  EXPECT_NE(table.str().find("wall_ms"), std::string::npos);
  EXPECT_NE(table.str().find("chain"), std::string::npos);
}

}  // namespace
}  // namespace minpower::report
