#include <gtest/gtest.h>

#include "decomp/node_decompose.hpp"
#include "helpers.hpp"
#include "prob/probability.hpp"
#include "util/rng.hpp"

namespace minpower {
namespace {

Cube lit(int v, bool pos = true) { return Cube::literal(v, pos); }

/// Emit a plan for `cover` into a fresh network over `k` PIs and check the
/// realized root computes exactly `cover`.
void expect_realizes(const Cover& cover, int k, const NodeDecomp& plan) {
  Network net("realize");
  std::vector<NodeId> pis;
  for (int i = 0; i < k; ++i) pis.push_back(net.add_pi("x" + std::to_string(i)));
  const NodeId root = emit_node_decomp(net, pis, cover, plan);
  net.add_po("f", root);
  net.check();
  EXPECT_TRUE(net.is_nand_network());
  for (std::uint64_t m = 0; m < (std::uint64_t{1} << k); ++m) {
    std::vector<bool> in(static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i) in[static_cast<std::size_t>(i)] = (m >> i) & 1;
    EXPECT_EQ(net.eval(in)[0], cover.eval(m)) << "minterm " << m;
  }
}

TEST(NodeDecomp, SingleLiteralCover) {
  const Cover f = Cover::literal(0, true);
  const std::vector<double> p{0.4};
  const NodeDecomp plan = decompose_node(f, p, CircuitStyle::kStatic,
                                         DecompAlgorithm::kMinPower);
  EXPECT_EQ(plan.realized_height, 0);
  expect_realizes(f, 1, plan);
}

TEST(NodeDecomp, NegativeLiteralNeedsOneInverter) {
  const Cover f = Cover::literal(0, false);
  const std::vector<double> p{0.4};
  const NodeDecomp plan = decompose_node(f, p, CircuitStyle::kStatic,
                                         DecompAlgorithm::kMinPower);
  EXPECT_EQ(plan.realized_height, 1);
  expect_realizes(f, 1, plan);
}

TEST(NodeDecomp, SingleCubeAnd) {
  // f = x0·x1·x2·x3
  Cover f{{lit(0) & lit(1) & lit(2) & lit(3)}};
  const std::vector<double> p{0.3, 0.4, 0.7, 0.5};
  const NodeDecomp plan = decompose_node(f, p, CircuitStyle::kDynamicP,
                                         DecompAlgorithm::kMinPower);
  expect_realizes(f, 4, plan);
  // AND of 4 literals: NAND tree + INV at root; min height = 2 (tree) →
  // realized 3..5 levels depending on shape.
  EXPECT_GE(plan.realized_height, 3);
}

TEST(NodeDecomp, TwoLevelSop) {
  // f = x0·x1 + !x2  — NAND-of-NANDs realization.
  Cover f{{lit(0) & lit(1), lit(2, false)}};
  const std::vector<double> p{0.5, 0.5, 0.5};
  const NodeDecomp plan = decompose_node(f, p, CircuitStyle::kStatic,
                                         DecompAlgorithm::kMinPower);
  expect_realizes(f, 3, plan);
}

TEST(NodeDecomp, BalancedIsFlatterOrEqual) {
  // Positive literals only: with negative phases a skewed tree can place
  // the inverter-bearing leaf shallower and beat the canonical balanced
  // shape by a level, so the claim below is only exact for uniform phases.
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const int k = static_cast<int>(rng.range(3, 8));
    Cover f;
    Cube c;
    for (int v = 0; v < k; ++v) c = c & lit(v, true);
    f.add(c);
    std::vector<double> p = testing::random_probs(rng, k);
    const NodeDecomp bal = decompose_node(f, p, CircuitStyle::kStatic,
                                          DecompAlgorithm::kBalanced);
    const NodeDecomp mp = decompose_node(f, p, CircuitStyle::kStatic,
                                         DecompAlgorithm::kMinPower);
    EXPECT_LE(bal.realized_height, mp.realized_height);
  }
}

TEST(NodeDecomp, MinpowerActivityNoWorseThanBalanced) {
  Rng rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    const int k = static_cast<int>(rng.range(3, 8));
    Cover f;
    Cube c;
    for (int v = 0; v < k; ++v) c = c & lit(v, true);
    f.add(c);
    std::vector<double> p = testing::random_probs(rng, k);
    const NodeDecomp bal = decompose_node(f, p, CircuitStyle::kDynamicP,
                                          DecompAlgorithm::kBalanced);
    const NodeDecomp mp = decompose_node(f, p, CircuitStyle::kDynamicP,
                                         DecompAlgorithm::kMinPower);
    EXPECT_LE(plan_tree_activity(mp, f, p, CircuitStyle::kDynamicP),
              plan_tree_activity(bal, f, p, CircuitStyle::kDynamicP) + 1e-9);
  }
}

TEST(NodeDecomp, HeightBoundIsHonored) {
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    const int k = 6;
    Cover f;
    for (int cu = 0; cu < 3; ++cu) {
      Cube c;
      for (int v = 0; v < k; ++v)
        if (rng.coin(0.7)) c = c & lit(v, rng.coin());
      if (c.is_one()) c = lit(0);
      f.add(c);
    }
    f.normalize();
    if (f.is_zero() || f.is_one()) continue;
    std::vector<double> p = testing::random_probs(rng, k);
    const NodeDecomp free_plan = decompose_node(
        f, p, CircuitStyle::kStatic, DecompAlgorithm::kMinPower);
    const int balanced = balanced_nand_height(f);
    for (int bound = free_plan.realized_height; bound >= balanced; --bound) {
      const NodeDecomp plan = decompose_node(
          f, p, CircuitStyle::kStatic, DecompAlgorithm::kMinPower, bound);
      EXPECT_LE(plan.realized_height, bound)
          << "cover " << f.to_string() << " bound " << bound;
      expect_realizes(f, k, plan);
    }
  }
}

TEST(NodeDecomp, BalancedNandHeightMatchesBalancedPlan) {
  Cover f{{lit(0) & lit(1) & lit(2) & lit(3) & lit(4)}};
  std::vector<double> p(5, 0.5);
  const NodeDecomp bal =
      decompose_node(f, p, CircuitStyle::kStatic, DecompAlgorithm::kBalanced);
  EXPECT_EQ(balanced_nand_height(f), bal.realized_height);
}

// Property: every decomposition realizes the cover exactly (random SOPs).
class NodeDecompFunction : public ::testing::TestWithParam<int> {};

TEST_P(NodeDecompFunction, RealizesFunction) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 271 + 9);
  const int k = static_cast<int>(rng.range(2, 7));
  Cover f;
  const int cubes = static_cast<int>(rng.range(1, 4));
  for (int cu = 0; cu < cubes; ++cu) {
    Cube c;
    for (int v = 0; v < k; ++v)
      if (rng.coin(0.6)) c = c & lit(v, rng.coin());
    if (c.is_one()) c = lit(static_cast<int>(rng.below(k)), rng.coin());
    f.add(c);
  }
  f.normalize();
  if (f.is_zero() || f.is_one()) GTEST_SKIP();
  std::vector<double> p = testing::random_probs(rng, k);
  for (const auto style :
       {CircuitStyle::kStatic, CircuitStyle::kDynamicP, CircuitStyle::kDynamicN}) {
    for (const auto algo :
         {DecompAlgorithm::kBalanced, DecompAlgorithm::kMinPower}) {
      const NodeDecomp plan = decompose_node(f, p, style, algo);
      expect_realizes(f, k, plan);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Random, NodeDecompFunction, ::testing::Range(0, 40));

}  // namespace
}  // namespace minpower
