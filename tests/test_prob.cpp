#include <gtest/gtest.h>

#include "helpers.hpp"
#include "prob/probability.hpp"
#include "util/rng.hpp"

namespace minpower {
namespace {

TEST(Activity, Formulas) {
  EXPECT_DOUBLE_EQ(switching_activity(0.3, CircuitStyle::kDynamicP), 0.3);
  EXPECT_DOUBLE_EQ(switching_activity(0.3, CircuitStyle::kDynamicN), 0.7);
  EXPECT_DOUBLE_EQ(switching_activity(0.3, CircuitStyle::kStatic),
                   2.0 * 0.3 * 0.7);
  // Static activity peaks at p = 0.5 and vanishes at the rails.
  EXPECT_DOUBLE_EQ(switching_activity(0.5, CircuitStyle::kStatic), 0.5);
  EXPECT_DOUBLE_EQ(switching_activity(0.0, CircuitStyle::kStatic), 0.0);
  EXPECT_DOUBLE_EQ(switching_activity(1.0, CircuitStyle::kStatic), 0.0);
}

TEST(Activity, StaticInvariantUnderComplement) {
  for (double p : {0.1, 0.25, 0.6, 0.9})
    EXPECT_DOUBLE_EQ(switching_activity(p, CircuitStyle::kStatic),
                     switching_activity(1.0 - p, CircuitStyle::kStatic));
}

TEST(SignalProbabilities, HandComputedExample) {
  // Figure-1-like: f = a·b·c·d with given input probabilities.
  Network net("and4");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId c = net.add_pi("c");
  const NodeId d = net.add_pi("d");
  const NodeId ab = net.add_and2(a, b);
  const NodeId abc = net.add_and2(ab, c);
  const NodeId abcd = net.add_and2(abc, d);
  net.add_po("f", abcd);
  const auto p = signal_probabilities(net, {0.3, 0.4, 0.7, 0.5});
  EXPECT_NEAR(p[static_cast<std::size_t>(ab)], 0.12, 1e-12);
  EXPECT_NEAR(p[static_cast<std::size_t>(abc)], 0.084, 1e-12);
  EXPECT_NEAR(p[static_cast<std::size_t>(abcd)], 0.042, 1e-12);
}

TEST(SignalProbabilities, DefaultIsHalf) {
  Network net("xor");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  // xor = a!b + !ab
  Cover c{{Cube::literal(0, true) & Cube::literal(1, false),
           Cube::literal(0, false) & Cube::literal(1, true)}};
  const NodeId x = net.add_node({a, b}, c, "x");
  net.add_po("f", x);
  const auto p = signal_probabilities(net);
  EXPECT_NEAR(p[static_cast<std::size_t>(x)], 0.5, 1e-12);
}

TEST(SignalProbabilities, ConstantsAreExact) {
  Network net("konst");
  net.add_pi("a");
  const NodeId one = net.add_constant(true, "one");
  const NodeId zero = net.add_constant(false, "zero");
  net.add_po("o1", one);
  net.add_po("o0", zero);
  const auto p = signal_probabilities(net);
  EXPECT_EQ(p[static_cast<std::size_t>(one)], 1.0);
  EXPECT_EQ(p[static_cast<std::size_t>(zero)], 0.0);
}

// Property: BDD-based probabilities equal the weighted-minterm oracle on
// random networks with random PI probabilities.
class ProbabilityProperty : public ::testing::TestWithParam<int> {};

TEST_P(ProbabilityProperty, ExactOnRandomNetworks) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Network net = testing::random_network(seed + 100, 6, 12, 3);
  Rng rng(seed * 17 + 3);
  const auto pi_p =
      testing::random_probs(rng, static_cast<int>(net.pis().size()));
  const auto fast = signal_probabilities(net, pi_p);
  const auto slow = testing::brute_force_probabilities(net, pi_p);
  for (NodeId id = 0; id < static_cast<NodeId>(net.capacity()); ++id) {
    if (net.node(id).is_dead()) continue;
    EXPECT_NEAR(fast[static_cast<std::size_t>(id)],
                slow[static_cast<std::size_t>(id)], 1e-9)
        << "node " << net.node(id).name;
  }
}

INSTANTIATE_TEST_SUITE_P(Random, ProbabilityProperty, ::testing::Range(0, 25));

TEST(TotalActivity, SumsInternalNodes) {
  Network net("sum");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId g = net.add_and2(a, b, "g");
  net.add_po("f", g);
  // p(g) = 0.25; static activity = 2·0.25·0.75 = 0.375.
  EXPECT_NEAR(total_internal_activity(net, CircuitStyle::kStatic), 0.375,
              1e-12);
  // Including PIs adds 2 × 0.5.
  EXPECT_NEAR(total_internal_activity(net, CircuitStyle::kStatic, {}, true),
              0.375 + 1.0, 1e-12);
  // Dynamic p-type: activity = p.
  EXPECT_NEAR(total_internal_activity(net, CircuitStyle::kDynamicP), 0.25,
              1e-12);
}

TEST(Equivalence, DetectsEqualAndUnequal) {
  Network a = testing::random_network(7, 5, 10, 2);
  Network b = a.duplicate();
  EXPECT_TRUE(networks_equivalent(a, b));

  // Tamper with one PO.
  Network c = a.duplicate();
  const NodeId d0 = c.pos()[0].driver;
  const NodeId inv = c.add_inv(d0, "tamper");
  c.set_po_driver(0, inv);
  EXPECT_FALSE(networks_equivalent(a, c));
}

TEST(Equivalence, PiNameMismatchFails) {
  Network a("a");
  const NodeId x = a.add_pi("x");
  a.add_po("f", x);
  Network b("b");
  const NodeId y = b.add_pi("y");
  b.add_po("f", y);
  EXPECT_FALSE(networks_equivalent(a, b));
}

TEST(Equivalence, InsensitiveToStructure) {
  // (a·b)·c vs a·(b·c)
  Network l("l");
  {
    const NodeId a = l.add_pi("a");
    const NodeId b = l.add_pi("b");
    const NodeId c = l.add_pi("c");
    l.add_po("f", l.add_and2(l.add_and2(a, b), c));
  }
  Network r("r");
  {
    const NodeId a = r.add_pi("a");
    const NodeId b = r.add_pi("b");
    const NodeId c = r.add_pi("c");
    r.add_po("f", r.add_and2(a, r.add_and2(b, c)));
  }
  EXPECT_TRUE(networks_equivalent(l, r));
}

}  // namespace
}  // namespace minpower
