// Line-protocol and robustness tests for `minpower serve` (serve/server.hpp):
// well-formed requests round-trip, malformed requests (truncated BLIF,
// oversized payload, bad option tokens, unknown verbs) answer structured
// minpower.serve.v1 errors, a client vanishing mid-exchange never takes the
// server down, and SHUTDOWN drains cleanly.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "helpers.hpp"
#include "io/blif.hpp"
#include "library/library.hpp"
#include "serve/client.hpp"
#include "serve/net.hpp"
#include "serve/server.hpp"
#include "util/json_reader.hpp"

namespace minpower {
namespace {

std::string small_blif() {
  std::ostringstream os;
  write_blif(testing::random_network(42, /*num_pi=*/5, /*num_nodes=*/8,
                                     /*num_po=*/2),
             os);
  return os.str();
}

/// Server bound to an ephemeral port for one test.
struct ServeFixture {
  explicit ServeFixture(serve::ServerOptions o = {})
      : server(standard_library(), std::move(o)) {
    std::string error;
    EXPECT_TRUE(server.start(&error)) << error;
  }
  ~ServeFixture() { server.stop(); }

  serve::Client connect() {
    serve::Client c;
    std::string error;
    EXPECT_TRUE(c.connect("127.0.0.1", server.port(), &error)) << error;
    return c;
  }

  serve::Server server;
};

/// Parse a minpower.serve.v1 error body and return error.message.
std::string error_message(const std::string& body) {
  std::string parse_error;
  const auto doc = parse_json(body, &parse_error);
  if (!doc) return "<unparsable: " + parse_error + ">";
  const JsonValue* schema = doc->find("schema");
  if (schema == nullptr || schema->string != "minpower.serve.v1")
    return "<wrong schema>";
  if (const JsonValue* e = doc->find("error"))
    if (const JsonValue* m = e->find("message")) return m->string;
  return "<no message>";
}

TEST(Serve, PingFlowAndStatsRoundTrip) {
  ServeFixture fx;
  serve::Client c = fx.connect();
  std::string error;
  EXPECT_TRUE(c.ping(&error)) << error;

  serve::Response r;
  ASSERT_TRUE(c.flow(small_blif(), {}, &r, &error)) << error;
  ASSERT_TRUE(r.ok) << r.body;
  EXPECT_EQ(r.hits, 0u);
  EXPECT_EQ(r.misses, 9u);  // 3 groups + 6 method results, all cold

  std::string parse_error;
  const auto doc = parse_json(r.body, &parse_error);
  ASSERT_TRUE(doc.has_value()) << parse_error;
  EXPECT_EQ(doc->find("schema")->string, "minpower.flow.v1");
  const JsonValue* circuits = doc->find("circuits");
  ASSERT_NE(circuits, nullptr);
  ASSERT_EQ(circuits->items.size(), 1u);
  EXPECT_EQ(circuits->items[0].find("name")->string, "rnd42");
  // Serve responses omit the (request-order-dependent) metrics block and
  // zero wall times, so identical requests are byte-identical.
  EXPECT_EQ(doc->find("metrics"), nullptr);
  EXPECT_EQ(doc->find("elapsed_ms")->number, 0.0);

  // Same circuit again on the same connection: all hits, identical body.
  serve::Response r2;
  ASSERT_TRUE(c.flow(small_blif(), {}, &r2, &error)) << error;
  ASSERT_TRUE(r2.ok);
  EXPECT_EQ(r2.hits, 6u);  // all six method results; groups never consulted
  EXPECT_EQ(r2.misses, 0u);
  EXPECT_EQ(r.body, r2.body);

  serve::Response st;
  ASSERT_TRUE(c.stats(&st, &error)) << error;
  ASSERT_TRUE(st.ok);
  const auto stats_doc = parse_json(st.body, &parse_error);
  ASSERT_TRUE(stats_doc.has_value()) << parse_error;
  EXPECT_EQ(stats_doc->find("schema")->string, "minpower.serve.v1");
  EXPECT_GE(stats_doc->find("session")->find("result_hits")->number, 6.0);
}

TEST(Serve, FlowOptionsChangeTheCacheKey) {
  ServeFixture fx;
  serve::Client c = fx.connect();
  std::string error;
  serve::Response r;
  ASSERT_TRUE(c.flow(small_blif(), {"vdd=3.3"}, &r, &error)) << error;
  ASSERT_TRUE(r.ok) << r.body;
  EXPECT_EQ(r.misses, 9u);
  // Different options: a fresh fingerprint, no sharing with the first run.
  serve::Response r2;
  ASSERT_TRUE(c.flow(small_blif(), {"vdd=5.0"}, &r2, &error)) << error;
  ASSERT_TRUE(r2.ok) << r2.body;
  EXPECT_EQ(r2.hits, 0u);
  EXPECT_NE(r.body, r2.body);  // power scales with vdd²
}

TEST(Serve, MalformedRequestsAnswerStructuredErrors) {
  ServeFixture fx;

  {  // Bad option token: framing intact, connection stays usable.
    serve::Client c = fx.connect();
    std::string error;
    serve::Response r;
    ASSERT_TRUE(c.flow(small_blif(), {"frobnicate=1"}, &r, &error)) << error;
    EXPECT_FALSE(r.ok);
    EXPECT_NE(error_message(r.body).find("unknown option"), std::string::npos)
        << r.body;
    ASSERT_TRUE(c.flow(small_blif(), {"deadline_ms=bogus"}, &r, &error))
        << error;
    EXPECT_FALSE(r.ok);
    EXPECT_NE(error_message(r.body).find("bad value"), std::string::npos);
    ASSERT_TRUE(c.flow(small_blif(), {}, &r, &error)) << error;
    EXPECT_TRUE(r.ok) << "connection unusable after option errors";
  }

  {  // Malformed BLIF payload: parser error with a line number.
    serve::Client c = fx.connect();
    std::string error;
    serve::Response r;
    ASSERT_TRUE(
        c.flow(".model broken\n.inputs a\n.outputs z\n.names a z\n2 1\n.end\n",
               {}, &r, &error))
        << error;
    EXPECT_FALSE(r.ok);
    std::string parse_error;
    const auto doc = parse_json(r.body, &parse_error);
    ASSERT_TRUE(doc.has_value()) << parse_error;
    EXPECT_GT(doc->find("error")->find("line")->number, 0.0);
    // BlifError plumbing reached the response; connection still alive.
    ASSERT_TRUE(c.flow(small_blif(), {}, &r, &error)) << error;
    EXPECT_TRUE(r.ok);
  }

  {  // Oversized payload: rejected without reading the body.
    serve::ServerOptions so;
    so.max_request_bytes = 128;
    ServeFixture small(so);
    serve::Client c = small.connect();
    std::string error;
    serve::Response r;
    ASSERT_TRUE(c.flow(std::string(4096, 'x'), {}, &r, &error)) << error;
    EXPECT_FALSE(r.ok);
    EXPECT_NE(error_message(r.body).find("payload too large"),
              std::string::npos);
  }

  {  // Unknown verb and unparsable header keep the server alive.
    const int fd = serve::tcp_connect("127.0.0.1", fx.server.port(), nullptr);
    ASSERT_GE(fd, 0);
    serve::LineReader reader(fd);
    ASSERT_TRUE(serve::send_all(fd, "MAKE COFFEE\n"));
    std::string line;
    ASSERT_EQ(reader.read_line(&line, 4096), serve::LineReader::Status::kOk);
    EXPECT_EQ(line.rfind("ERR ", 0), 0u) << line;
    ASSERT_TRUE(serve::send_all(fd, "FLOW notanumber\n"));
    // Skip the previous error body, then expect the header error.
    std::string body;
    reader.read_exact(&body, std::strtoull(line.c_str() + 4, nullptr, 10));
    ASSERT_EQ(reader.read_line(&line, 4096), serve::LineReader::Status::kOk);
    EXPECT_EQ(line.rfind("ERR ", 0), 0u);
    serve::close_fd(fd);
  }

  // After all of the above the server still answers.
  serve::Client c = fx.connect();
  std::string error;
  EXPECT_TRUE(c.ping(&error)) << error;
}

TEST(Serve, TruncatedPayloadAndMidResponseDisconnectKeepServerUp) {
  ServeFixture fx;

  {  // Truncated BLIF mid-request: client claims 500 bytes, sends 20, hangs
     // up. The server answers a structured error (best effort) and closes.
    const int fd = serve::tcp_connect("127.0.0.1", fx.server.port(), nullptr);
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(serve::send_all(fd, "FLOW 500\n.model truncated\n"));
    ::shutdown(fd, SHUT_WR);
    serve::LineReader reader(fd);
    std::string line;
    if (reader.read_line(&line, 4096) == serve::LineReader::Status::kOk) {
      EXPECT_EQ(line.rfind("ERR ", 0), 0u) << line;
    }
    serve::close_fd(fd);
  }

  {  // Disconnect without reading the response at all.
    const int fd = serve::tcp_connect("127.0.0.1", fx.server.port(), nullptr);
    ASSERT_GE(fd, 0);
    const std::string blif = small_blif();
    ASSERT_TRUE(serve::send_all(
        fd, "FLOW " + std::to_string(blif.size()) + "\n" + blif));
    serve::close_fd(fd);  // gone before the response lands
  }

  // Server survives both and still serves full requests.
  serve::Client c = fx.connect();
  std::string error;
  serve::Response r;
  ASSERT_TRUE(c.flow(small_blif(), {}, &r, &error)) << error;
  EXPECT_TRUE(r.ok);
}

TEST(Serve, IdleConnectionsAreReaped) {
  serve::ServerOptions so;
  so.idle_timeout_ms = 150;
  ServeFixture fx(so);

  const int fd = serve::tcp_connect("127.0.0.1", fx.server.port(), nullptr);
  ASSERT_GE(fd, 0);
  // Send nothing: the reaper must answer a structured retryable error
  // within a few idle ticks instead of pinning the worker forever.
  serve::LineReader reader(fd);
  std::string line;
  ASSERT_EQ(reader.read_line(&line, 4096), serve::LineReader::Status::kOk);
  EXPECT_EQ(line.rfind("ERR ", 0), 0u) << line;
  std::string body;
  reader.read_exact(&body, std::strtoull(line.c_str() + 4, nullptr, 10));
  EXPECT_NE(body.find("idle connection reaped"), std::string::npos) << body;
  EXPECT_NE(body.find("\"retryable\": true"), std::string::npos) << body;
  serve::close_fd(fd);
  EXPECT_GE(fx.server.stats().idle_reaped, 1u);

  // Reaping a leaked client must not take down the server.
  serve::Client c = fx.connect();
  std::string error;
  EXPECT_TRUE(c.ping(&error)) << error;
}

TEST(Serve, SignalDrainAnswersIdleConnectionsAndReleasesWait) {
  auto* fx = new ServeFixture();
  const int fd = serve::tcp_connect("127.0.0.1", fx->server.port(), nullptr);
  ASSERT_GE(fd, 0);

  fx->server.signal_drain();  // what the CLI's SIGTERM handler calls

  // The idle connection is told to come back later (retryable), not left
  // hanging on a dead server.
  serve::LineReader reader(fd);
  std::string line;
  ASSERT_EQ(reader.read_line(&line, 4096), serve::LineReader::Status::kOk);
  EXPECT_EQ(line.rfind("ERR ", 0), 0u) << line;
  std::string body;
  reader.read_exact(&body, std::strtoull(line.c_str() + 4, nullptr, 10));
  EXPECT_NE(body.find("draining"), std::string::npos) << body;
  EXPECT_NE(body.find("\"retryable\": true"), std::string::npos) << body;
  serve::close_fd(fd);

  fx->server.wait();  // drain releases wait() without a SHUTDOWN request
  EXPECT_TRUE(fx->server.draining());
  EXPECT_GE(fx->server.stats().drain_rejections, 1u);
  delete fx;
}

TEST(Serve, BusyRejectionIsRetryable) {
  serve::ServerOptions so;
  so.workers = 1;
  so.max_pending = 0;  // admission control refuses every connection
  ServeFixture fx(so);

  serve::Client c = fx.connect();  // TCP connect succeeds…
  std::string error;
  serve::Response r;
  ASSERT_TRUE(c.flow(small_blif(), {}, &r, &error)) << error;
  EXPECT_FALSE(r.ok);  // …but the request is answered with the busy error
  EXPECT_NE(r.body.find("server busy"), std::string::npos) << r.body;
  EXPECT_TRUE(serve::response_retryable(r)) << r.body;
  EXPECT_GE(fx.server.stats().busy_rejections, 1u);
}

TEST(Serve, ClientConnectRetryBacksOffThenFails) {
  serve::RetryPolicy policy;
  policy.retries = 2;
  policy.base_ms = 10;

  // Find a dead port by binding one and closing it again.
  ServeFixture* fx = new ServeFixture();
  const std::uint16_t dead_port = fx->server.port();
  delete fx;

  serve::Client c;
  std::string error;
  unsigned attempts = 0;
  EXPECT_FALSE(
      c.connect_with_retry("127.0.0.1", dead_port, policy, &attempts, &error));
  EXPECT_EQ(attempts, 2u);
  EXPECT_NE(error.find("refused"), std::string::npos) << error;

  // Against a live server the first try lands: zero re-attempts.
  ServeFixture live;
  attempts = 99;
  EXPECT_TRUE(c.connect_with_retry("127.0.0.1", live.server.port(), policy,
                                   &attempts, &error))
      << error;
  EXPECT_EQ(attempts, 0u);
  std::string ping_error;
  EXPECT_TRUE(c.ping(&ping_error)) << ping_error;
}

TEST(Serve, ResponseTimeoutUnsticksClient) {
  // A listener that accepts (via the kernel backlog) but never answers.
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listener, 1), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &len),
            0);

  serve::Client c;
  c.set_response_timeout_ms(200);
  std::string error;
  ASSERT_TRUE(c.connect("127.0.0.1", ntohs(addr.sin_port), &error)) << error;
  EXPECT_FALSE(c.ping(&error));  // would block forever without the timeout
  EXPECT_NE(error.find("timed out"), std::string::npos) << error;
  serve::close_fd(listener);
}

TEST(Serve, MetricsVerbAnswersPrometheusExposition) {
  ServeFixture fx;
  serve::Client c = fx.connect();
  std::string error;
  serve::Response r;
  ASSERT_TRUE(c.flow(small_blif(), {}, &r, &error)) << error;
  ASSERT_TRUE(r.ok) << r.body;

  const int fd = serve::tcp_connect("127.0.0.1", fx.server.port(), nullptr);
  ASSERT_GE(fd, 0);
  serve::LineReader reader(fd);
  ASSERT_TRUE(serve::send_all(fd, "METRICS\n"));
  std::string line;
  ASSERT_EQ(reader.read_line(&line, 4096), serve::LineReader::Status::kOk);
  ASSERT_EQ(line.rfind("OK ", 0), 0u) << line;
  std::string body;
  reader.read_exact(&body, std::strtoull(line.c_str() + 3, nullptr, 10));
  serve::close_fd(fd);

  // Service counters show up mangled into the Prometheus charset, with the
  // counter `_total` suffix.
  EXPECT_NE(body.find("serve_requests_total"), std::string::npos) << body;
  EXPECT_NE(body.find("serve_flow_ok_total"), std::string::npos);
  EXPECT_EQ(body.find("serve.requests"), std::string::npos)
      << "raw dotted name leaked into the exposition";

  // Every sample line's metric name obeys [a-zA-Z_:][a-zA-Z0-9_:]* and
  // every histogram's cumulative buckets are monotone, capped by +Inf.
  std::istringstream lines(body);
  std::string row;
  std::string series;
  long long prev = -1;
  while (std::getline(lines, row)) {
    if (row.empty()) continue;
    if (row.rfind("# TYPE ", 0) == 0) continue;
    const std::size_t name_end = row.find_first_of(" {");
    ASSERT_NE(name_end, std::string::npos) << row;
    const std::string name = row.substr(0, name_end);
    ASSERT_FALSE(name.empty()) << row;
    EXPECT_FALSE(name[0] >= '0' && name[0] <= '9') << row;
    for (const char ch : name) {
      const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                      (ch >= '0' && ch <= '9') || ch == '_' || ch == ':';
      EXPECT_TRUE(ok) << row;
    }
    const std::size_t bucket = row.find("_bucket{le=");
    if (bucket == std::string::npos) continue;
    const std::string hist = row.substr(0, bucket);
    if (hist != series) {
      series = hist;
      prev = -1;
    }
    const long long v = std::stoll(row.substr(row.rfind(' ') + 1));
    EXPECT_GE(v, prev) << row;
    prev = v;
    if (row.find("le=\"+Inf\"") != std::string::npos) {
      // The +Inf bound equals the histogram's _count line.
      const std::size_t count_at = body.find(hist + "_count ");
      ASSERT_NE(count_at, std::string::npos) << hist;
      const long long count = std::stoll(
          body.substr(count_at + hist.size() + std::strlen("_count ")));
      EXPECT_EQ(v, count) << hist;
    }
  }
}

TEST(Serve, AccessLogRecordsOneJsonLinePerRequest) {
  const std::string log_path = ::testing::TempDir() + "serve_access.jsonl";
  std::remove(log_path.c_str());

  serve::ServerOptions so;
  so.access_log = log_path;
  {
    ServeFixture fx(so);
    serve::Client c = fx.connect();
    std::string error;
    EXPECT_TRUE(c.ping(&error)) << error;
    serve::Response r;
    ASSERT_TRUE(c.flow(small_blif(), {}, &r, &error)) << error;
    ASSERT_TRUE(r.ok) << r.body;

    const int fd = serve::tcp_connect("127.0.0.1", fx.server.port(), nullptr);
    ASSERT_GE(fd, 0);
    serve::LineReader reader(fd);
    ASSERT_TRUE(serve::send_all(fd, "METRICS\n"));
    std::string line;
    ASSERT_EQ(reader.read_line(&line, 4096), serve::LineReader::Status::kOk);
    EXPECT_EQ(line.rfind("OK ", 0), 0u) << line;
    std::string body;
    reader.read_exact(&body, std::strtoull(line.c_str() + 3, nullptr, 10));
    serve::close_fd(fd);
  }  // stop() joins the workers; every answered request is on disk

  std::ifstream in(log_path);
  ASSERT_TRUE(in.good()) << log_path;
  std::vector<std::string> verbs;
  std::set<std::uint64_t> ids;
  std::string line;
  bool saw_flow = false;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    std::string parse_error;
    const auto doc = parse_json(line, &parse_error);
    ASSERT_TRUE(doc.has_value()) << parse_error << ": " << line;
    // Full schema on every line, even for body-less verbs.
    for (const char* key : {"id", "peer", "verb", "bytes_in", "bytes_out",
                            "outcome", "wall_us", "hits", "misses"}) {
      ASSERT_NE(doc->find(key), nullptr) << key << " missing in " << line;
    }
    const auto id = static_cast<std::uint64_t>(doc->find("id")->number);
    // Lines land in completion order (a fast request on another connection
    // can finish before a slow one that started earlier), but the shared
    // request counter makes every id unique.
    EXPECT_TRUE(ids.insert(id).second) << "duplicate request id: " << line;
    EXPECT_NE(doc->find("peer")->string.find("127.0.0.1:"), std::string::npos);
    verbs.push_back(doc->find("verb")->string);
    if (doc->find("verb")->string == "FLOW") {
      saw_flow = true;
      EXPECT_EQ(doc->find("outcome")->string, "ok") << line;
      EXPECT_GT(doc->find("bytes_in")->number, 0.0);
      EXPECT_GT(doc->find("bytes_out")->number, 0.0);
      EXPECT_EQ(doc->find("misses")->number, 9.0) << line;
    }
  }
  EXPECT_TRUE(saw_flow);
  // The counter starts at 1 and every answered request is on disk, so the
  // ids are exactly the contiguous range [1, N].
  ASSERT_FALSE(ids.empty());
  EXPECT_EQ(*ids.begin(), 1u);
  EXPECT_EQ(*ids.rbegin(), ids.size());
  EXPECT_NE(std::find(verbs.begin(), verbs.end(), "PING"), verbs.end());
  EXPECT_NE(std::find(verbs.begin(), verbs.end(), "METRICS"), verbs.end());
  std::remove(log_path.c_str());
}

TEST(Serve, ShutdownRequestEndsWait) {
  auto* fx = new ServeFixture();
  serve::Client c = fx->connect();
  std::string error;
  ASSERT_TRUE(c.shutdown_server(&error)) << error;
  fx->server.wait();  // returns only once the shutdown request lands
  const serve::ServeStats stats = fx->server.stats();
  EXPECT_GE(stats.requests, 1u);
  delete fx;  // ~Server() stop() is idempotent after wait()

  // Port is released: nothing is listening anymore.
  serve::Client again;
  EXPECT_FALSE(again.connect("127.0.0.1", 1, &error));
}

}  // namespace
}  // namespace minpower
