// util/json_reader.hpp module tests: the parser must cover everything the
// tool's own writers emit — JsonWriter control-character escapes, the trace
// exporter's \uXXXX sequences, and negative / exponent-form numbers — and
// stay strict about everything else (bad escapes, unpaired surrogates,
// malformed numbers, trailing garbage, runaway nesting).

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "util/json_reader.hpp"
#include "util/json_writer.hpp"

namespace minpower {
namespace {

JsonValue parse_ok(const std::string& text) {
  std::string error;
  const auto v = parse_json(text, &error);
  EXPECT_TRUE(v.has_value()) << text << ": " << error;
  return v.value_or(JsonValue{});
}

void expect_reject(const std::string& text) {
  std::string error;
  EXPECT_FALSE(parse_json(text, &error).has_value()) << text;
  EXPECT_FALSE(error.empty()) << text;
}

TEST(JsonReader, DecodesSimpleEscapes) {
  const JsonValue v =
      parse_ok(R"({"s": "a\"b\\c\/d\b\f\n\r\t"})");
  EXPECT_EQ(v.find("s")->string, "a\"b\\c/d\b\f\n\r\t");
}

TEST(JsonReader, DecodesUnicodeEscapesToUtf8) {
  // 1-, 2-, and 3-byte UTF-8 plus a surrogate pair (4-byte).
  const JsonValue v = parse_ok(
      R"({"ascii": "A", "two": "é", "three": "€",)"
      R"( "pair": "😀"})");
  EXPECT_EQ(v.find("ascii")->string, "A");
  EXPECT_EQ(v.find("two")->string, "\xC3\xA9");        // é
  EXPECT_EQ(v.find("three")->string, "\xE2\x82\xAC");  // €
  EXPECT_EQ(v.find("pair")->string, "\xF0\x9F\x98\x80");  // U+1F600
}

TEST(JsonReader, UpperAndLowerCaseHexBothWork) {
  EXPECT_EQ(parse_ok(R"("é")").string, parse_ok(R"("é")").string);
}

TEST(JsonReader, RejectsBadUnicodeEscapes) {
  expect_reject(R"("\u12")");            // truncated
  expect_reject(R"("\uZZZZ")");          // bad hex
  expect_reject(R"("\ud83d")");          // unpaired high surrogate
  expect_reject(R"("\ud83dxx")");        // high surrogate, no \u follows
  expect_reject(R"("\ud83dA")");    // high surrogate, low half invalid
  expect_reject(R"("\ude00")");          // lone low surrogate
  expect_reject(R"("\x41")");            // not a JSON escape
}

TEST(JsonReader, ParsesNumberForms) {
  const JsonValue v = parse_ok(
      R"({"neg": -42, "frac": 3.25, "negfrac": -0.5, "exp": 1e3,)"
      R"( "negexp": 2.5e-2, "upper": 4E+2, "zero": 0, "negzero": -0})");
  EXPECT_EQ(v.find("neg")->number, -42.0);
  EXPECT_EQ(v.find("frac")->number, 3.25);
  EXPECT_EQ(v.find("negfrac")->number, -0.5);
  EXPECT_EQ(v.find("exp")->number, 1000.0);
  EXPECT_EQ(v.find("negexp")->number, 0.025);
  EXPECT_EQ(v.find("upper")->number, 400.0);
  EXPECT_EQ(v.find("zero")->number, 0.0);
  EXPECT_EQ(v.find("negzero")->number, 0.0);
  EXPECT_TRUE(std::signbit(v.find("negzero")->number));
}

TEST(JsonReader, Parses17DigitDoublesExactly) {
  // write_flow_json emits %.17g — a round trip must be bit-exact.
  const double x = 211.34703457355499;
  std::ostringstream os;
  {
    JsonWriter w(os);
    w.begin_object();
    w.field("x", x);
    w.end_object();
  }
  EXPECT_EQ(parse_ok(os.str()).find("x")->number, x);
}

TEST(JsonReader, RejectsMalformedNumbers) {
  expect_reject("+5");     // leading plus
  expect_reject("-");      // sign alone
  expect_reject(".5");     // missing integer part
  expect_reject("1e");     // empty exponent
  expect_reject("1e+");    // empty signed exponent
  expect_reject("1.2.3");  // double dot
  expect_reject("1-2");    // stray sign
}

TEST(JsonReader, RoundTripsJsonWriterControlCharacters) {
  // JsonWriter escapes control bytes as \u00XX; the reader must decode
  // them back to the original bytes.
  const std::string original = std::string("a\x01b\x1f") + "c\nd";
  std::ostringstream os;
  {
    JsonWriter w(os);
    w.begin_object();
    w.field("s", original);
    w.end_object();
  }
  EXPECT_EQ(parse_ok(os.str()).find("s")->string, original);
}

TEST(JsonReader, DepthLimit) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += '[';
  deep += "1";
  for (int i = 0; i < 100; ++i) deep += ']';
  expect_reject(deep);

  std::string shallow;
  for (int i = 0; i < 30; ++i) shallow += '[';
  shallow += "1";
  for (int i = 0; i < 30; ++i) shallow += ']';
  EXPECT_TRUE(parse_json(shallow).has_value());
}

TEST(JsonReader, RejectsTrailingContentAndTruncation) {
  expect_reject("{} {}");
  expect_reject("[1,2] x");
  expect_reject("{\"a\": 1");
  expect_reject("[1, 2");
  expect_reject("\"abc");
  expect_reject("{\"a\"");
}

TEST(JsonReader, ObjectOrderAndDuplicateKeysPreserved) {
  const JsonValue v = parse_ok(R"({"b": 1, "a": 2, "b": 3})");
  ASSERT_EQ(v.members.size(), 3u);
  EXPECT_EQ(v.members[0].first, "b");
  EXPECT_EQ(v.members[1].first, "a");
  // find() returns the first occurrence.
  EXPECT_EQ(v.find("b")->number, 1.0);
}

}  // namespace
}  // namespace minpower
