// Edge cases and failure-injection across modules: the inputs a release
// build meets in the wild.

#include <gtest/gtest.h>

#include "bdd/bdd.hpp"
#include "decomp/network_decompose.hpp"
#include "helpers.hpp"
#include "io/blif.hpp"
#include "map/mapper.hpp"
#include "opt/optimize.hpp"
#include "prob/probability.hpp"

namespace minpower {
namespace {

TEST(EdgeCases, BddNodeLimitThrowsRecoverable) {
  // A tiny manager hits its ceiling on a parity chain. The limit is a
  // recoverable ResourceExhausted (callers retry or degrade), not an abort.
  BddManager mgr(8);
  BddRef f = BddManager::kFalse;
  EXPECT_THROW(
      {
        for (int i = 0; i < 10; ++i) f = mgr.xor_(f, mgr.var(i));
      },
      ResourceExhausted);
}

TEST(EdgeCases, BddOpCacheClearKeepsRefsValid) {
  BddManager mgr;
  const BddRef a = mgr.var(0);
  const BddRef b = mgr.var(1);
  const BddRef f = mgr.and_(a, b);
  mgr.clear_op_cache();
  EXPECT_EQ(mgr.and_(a, b), f);  // unique table survives
}

TEST(EdgeCases, NetworkCycleDetected) {
  Network net("cycle");
  const NodeId a = net.add_pi("a");
  const NodeId x = net.add_and2(a, a);  // placeholder second input
  const NodeId y = net.add_and2(x, a);
  net.add_po("f", y);
  // Manually create a cycle: x reads y.
  net.node(x).fanins[1] = y;
  net.node(y).fanouts.push_back(x);
  // Remove the stale a→x edge bookkeeping for consistency of the test.
  auto& fo = net.node(a).fanouts;
  fo.erase(std::find(fo.begin(), fo.end(), x));
  EXPECT_DEATH(net.topo_order(), "combinational cycle");
}

TEST(EdgeCases, BlifRejectsDoubleDriver) {
  const std::string text =
      ".model bad\n.inputs a\n.outputs f\n"
      ".names a f\n1 1\n.names a f\n0 1\n.end\n";
  EXPECT_DEATH(read_blif_string(text), "driven twice");
}

TEST(EdgeCases, BlifRejectsUndrivenOutput) {
  const std::string text = ".model bad\n.inputs a\n.outputs f\n.end\n";
  EXPECT_DEATH(read_blif_string(text), "undriven");
}

TEST(EdgeCases, BlifRejectsCyclicGates) {
  const std::string text =
      ".model bad\n.inputs a\n.outputs f\n"
      ".names a g f\n11 1\n.names f g\n1 1\n.end\n";
  EXPECT_DEATH(read_blif_string(text), "cycle");
}

TEST(EdgeCases, SingleNodeNetworkFlows) {
  // The smallest interesting circuit goes through the whole pipeline.
  Network net("tiny");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  net.add_po("f", net.add_nand2(a, b));
  NetworkDecompOptions d;
  const Network subject = decompose_network(net, d).network;
  MapOptions m;
  const MapResult r = map_network(subject, standard_library(), m);
  EXPECT_EQ(r.mapped.num_gates(), 1u);
  EXPECT_FALSE(r.mapped.eval({true, true})[0]);
}

TEST(EdgeCases, WideNodeDecomposes) {
  // A 20-input AND stresses the tree algorithms beyond the exhaustive path.
  Network net("wide");
  std::vector<NodeId> pis;
  Cube cube;
  for (int i = 0; i < 20; ++i) {
    pis.push_back(net.add_pi("p" + std::to_string(i)));
    cube = cube & Cube::literal(i, true);
  }
  net.add_po("f", net.add_node(pis, Cover{{cube}}, "big"));
  NetworkDecompOptions d;
  const auto r = decompose_network(net, d);
  EXPECT_TRUE(networks_equivalent(net, r.network));
  // 20-leaf AND: 19 NAND-ish internal pairs plus inverters.
  EXPECT_GE(r.network.num_internal(), 19u);
}

TEST(EdgeCases, EliminateOnEmptyNetworkIsNoop) {
  Network net("pis_only");
  const NodeId a = net.add_pi("a");
  net.add_po("f", a);
  EXPECT_EQ(eliminate(net, 0), 0);
  EXPECT_EQ(extract_cube_divisors(net), 0);
  EXPECT_EQ(simplify_nodes(net), 0);
  net.check();
}

TEST(EdgeCases, ProbabilitiesAtRails) {
  Network net("rails");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  net.add_po("f", net.add_and2(a, b));
  const auto p = signal_probabilities(net, {1.0, 0.0});
  const NodeId f = net.pos()[0].driver;
  EXPECT_DOUBLE_EQ(p[static_cast<std::size_t>(f)], 0.0);
  const auto q = signal_probabilities(net, {1.0, 1.0});
  EXPECT_DOUBLE_EQ(q[static_cast<std::size_t>(f)], 1.0);
}

TEST(EdgeCases, MapperWithEveryPoConstrainedTight) {
  Network raw = testing::random_network(31, 6, 12, 3);
  NetworkDecompOptions d;
  const Network subject = decompose_network(raw, d).network;
  MapOptions m;
  m.po_required.assign(subject.pos().size(), 0.0);  // impossible
  const MapResult r = map_network(subject, standard_library(), m);
  // Infeasible constraints degrade to fastest-possible, never crash.
  r.mapped.check();
  EXPECT_EQ(r.mapped.po_signal.size(), subject.pos().size());
}

TEST(EdgeCases, DuplicatePoNamesAreAllowed) {
  Network net("dup");
  const NodeId a = net.add_pi("a");
  const NodeId i = net.add_inv(a);
  net.add_po("f", i);
  net.add_po("f", i);  // same name twice: legal in the data structure
  EXPECT_EQ(net.pos().size(), 2u);
  EXPECT_EQ(net.po_refs(i), 2);
  EXPECT_EQ(net.fanout_count(i), 2);
}

}  // namespace
}  // namespace minpower
