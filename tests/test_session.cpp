// FlowSession: structural-hash / option-fingerprint properties and
// cross-run cache behavior (DESIGN.md §13).
//
// The hash contract under test: declaration-order permutations of the same
// netlist (PI order, .names block order, cube row order) hash identically;
// any functional change — a flipped cube literal, a different option value,
// a different PI probability — changes the key.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "flow/flow_engine.hpp"
#include "helpers.hpp"
#include "io/blif.hpp"
#include "library/library.hpp"

namespace minpower {
namespace {

using testing::random_network;

std::string to_blif(const Network& net) {
  std::ostringstream os;
  write_blif(net, os);
  return os.str();
}

Network from_blif(const std::string& text) {
  BlifError err;
  std::optional<Network> net = try_read_blif_string(text, &err);
  EXPECT_TRUE(net.has_value()) << err.to_string();
  return std::move(*net);
}

/// Split a BLIF document into (header lines, .names blocks, trailer) so the
/// blocks can be permuted. Assumes write_blif output: one .names header
/// followed by its cube rows.
struct BlifPieces {
  std::vector<std::string> header;               // .model/.inputs/.outputs
  std::vector<std::vector<std::string>> blocks;  // .names + cube rows
  std::vector<std::string> trailer;              // .end
};

BlifPieces split_blif(const std::string& text) {
  BlifPieces p;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(".names", 0) == 0) {
      p.blocks.push_back({line});
    } else if (line.rfind(".end", 0) == 0) {
      p.trailer.push_back(line);
    } else if (p.blocks.empty()) {
      p.header.push_back(line);
    } else {
      p.blocks.back().push_back(line);  // cube row of the open block
    }
  }
  return p;
}

std::string join_blif(const BlifPieces& p) {
  std::string out;
  for (const std::string& l : p.header) out += l + "\n";
  for (const auto& b : p.blocks)
    for (const std::string& l : b) out += l + "\n";
  for (const std::string& l : p.trailer) out += l + "\n";
  return out;
}

/// Reverse the .inputs token order (a PI declaration-order permutation).
void permute_inputs(BlifPieces* p) {
  for (std::string& line : p->header) {
    if (line.rfind(".inputs", 0) != 0) continue;
    std::istringstream in(line);
    std::string tok;
    std::vector<std::string> toks;
    while (in >> tok) toks.push_back(tok);
    std::reverse(toks.begin() + 1, toks.end());
    line = toks.front();
    for (std::size_t i = 1; i < toks.size(); ++i) line += " " + toks[i];
  }
}

TEST(StructuralHash, InvariantUnderDeclarationPermutations) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    // Baseline and variants all go through the BLIF reader: write_blif
    // inserts PO buffer nodes, so an in-memory network is (correctly) not
    // hash-equal to its own roundtrip.
    BlifPieces p = split_blif(to_blif(random_network(seed)));
    ASSERT_GE(p.blocks.size(), 2u) << "seed " << seed;
    const Hash128 h0 = structural_hash(from_blif(join_blif(p)));

    // Node declaration order: reverse the .names blocks.
    std::reverse(p.blocks.begin(), p.blocks.end());
    EXPECT_EQ(h0, structural_hash(from_blif(join_blif(p))))
        << "node order changed the hash (seed " << seed << ")";

    // Cube row order within each block.
    for (auto& b : p.blocks)
      if (b.size() > 2) std::reverse(b.begin() + 1, b.end());
    EXPECT_EQ(h0, structural_hash(from_blif(join_blif(p))))
        << "cube order changed the hash (seed " << seed << ")";

    // PI declaration order.
    permute_inputs(&p);
    EXPECT_EQ(h0, structural_hash(from_blif(join_blif(p))))
        << "PI order changed the hash (seed " << seed << ")";
  }
}

TEST(StructuralHash, SingleLiteralFlipChangesHash) {
  int flipped = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    std::string text = to_blif(random_network(seed));
    const Hash128 h0 = structural_hash(from_blif(text));

    // Flip the first cube input literal ('0' <-> '1') on a cube row (a line
    // that does not start with '.').
    std::istringstream in(text);
    std::string line;
    std::size_t offset = 0;
    bool done = false;
    while (!done && std::getline(in, line)) {
      if (line.empty() || line[0] == '.') {
        offset += line.size() + 1;
        continue;
      }
      for (std::size_t i = 0; i < line.size() && line[i] != ' '; ++i) {
        if (line[i] == '0' || line[i] == '1') {
          text[offset + i] = line[i] == '0' ? '1' : '0';
          done = true;
          break;
        }
      }
      offset += line.size() + 1;
    }
    if (!done) continue;  // all-dontcare covers: nothing to flip
    ++flipped;
    EXPECT_NE(h0, structural_hash(from_blif(text)))
        << "literal flip kept the hash (seed " << seed << ")";
  }
  EXPECT_GT(flipped, 0) << "no circuit offered a flippable literal";
}

TEST(StructuralHash, DistinctCircuitsHashDistinct) {
  std::vector<Hash128> seen;
  for (std::uint64_t seed = 1; seed <= 16; ++seed)
    seen.push_back(structural_hash(random_network(seed)));
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

TEST(OptionFingerprint, SensitiveToEveryResultAffectingField) {
  const Network net = random_network(3);
  const FlowOptions base;
  const Hash128 h0 = option_fingerprint(base, net);

  FlowOptions o = base;
  o.vdd = 3.3;
  EXPECT_NE(h0, option_fingerprint(o, net));

  o = base;
  o.style = CircuitStyle::kDynamicP;
  EXPECT_NE(h0, option_fingerprint(o, net));

  o = base;
  o.task_deadline_ms = 100.0;
  EXPECT_NE(h0, option_fingerprint(o, net));

  o = base;
  o.bdd_node_limit = base.bdd_node_limit / 2;
  EXPECT_NE(h0, option_fingerprint(o, net));

  o = base;
  o.relax_factor = 1.5;
  EXPECT_NE(h0, option_fingerprint(o, net));

  // PI probabilities participate: one changed probability changes the key,
  // but an explicit all-default vector matches the empty default.
  o = base;
  o.pi_prob1.assign(net.pis().size(), 0.5);
  EXPECT_EQ(h0, option_fingerprint(o, net));
  o.pi_prob1.front() = 0.3;
  EXPECT_NE(h0, option_fingerprint(o, net));

  // Thread count must NOT participate (results are thread-independent).
  o = base;
  o.num_threads = 8;
  EXPECT_EQ(h0, option_fingerprint(o, net));
}

TEST(OptionFingerprint, BindsProbabilitiesByPiName) {
  // Permuting the netlist's PI declaration order AND the probability vector
  // consistently must not change the fingerprint.
  // Both sides roundtrip through BLIF so PO buffer insertion cancels out.
  const Network original = from_blif(to_blif(random_network(5)));
  BlifPieces p = split_blif(to_blif(original));
  permute_inputs(&p);
  const Network permuted = from_blif(join_blif(p));
  ASSERT_EQ(structural_hash(original), structural_hash(permuted));

  FlowOptions a;
  a.pi_prob1.resize(original.pis().size());
  for (std::size_t i = 0; i < a.pi_prob1.size(); ++i)
    a.pi_prob1[i] = 0.1 + 0.05 * static_cast<double>(i);

  // Rebuild the vector in the permuted network's PI order by name.
  FlowOptions b;
  b.pi_prob1.resize(permuted.pis().size());
  for (std::size_t i = 0; i < permuted.pis().size(); ++i) {
    const std::string& name = permuted.node(permuted.pis()[i]).name;
    for (std::size_t j = 0; j < original.pis().size(); ++j)
      if (original.node(original.pis()[j]).name == name)
        b.pi_prob1[i] = a.pi_prob1[j];
  }
  EXPECT_EQ(option_fingerprint(a, original), option_fingerprint(b, permuted));

  // ...and a mismatched assignment (same multiset, wrong PIs) changes it.
  FlowOptions c = b;
  std::reverse(c.pi_prob1.begin(), c.pi_prob1.end());
  EXPECT_NE(option_fingerprint(a, original), option_fingerprint(c, permuted));
}

TEST(FlowSession, WarmRunHitsCacheWithIdenticalResults) {
  const Library& lib = standard_library();
  SessionOptions so;
  so.enable_cache = true;
  FlowSession session(lib, EngineOptions{}, so);

  Network net = random_network(7);
  prepare_network(net);

  SessionStats cold;
  const std::vector<FlowResult> r1 =
      session.run_circuit(net, session.options().flow, &cold);
  EXPECT_EQ(cold.group_hits, 0u);
  EXPECT_EQ(cold.group_misses, 3u);
  EXPECT_EQ(cold.result_misses, 6u);

  SessionStats warm;
  const std::vector<FlowResult> r2 =
      session.run_circuit(net, session.options().flow, &warm);
  EXPECT_EQ(warm.group_hits, 0u);  // stage 2 hit first; stage 1 not consulted
  EXPECT_EQ(warm.result_hits, 6u);
  EXPECT_EQ(warm.result_misses, 0u);

  // A warm run computes nothing.
  EXPECT_EQ(session.counters().decomp_passes, 3);
  EXPECT_EQ(session.counters().map_passes, 6);

  ASSERT_EQ(r1.size(), r2.size());
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(r1[i].area, r2[i].area);
    EXPECT_EQ(r1[i].delay, r2[i].delay);
    EXPECT_EQ(r1[i].power_uw, r2[i].power_uw);
    EXPECT_EQ(r1[i].gates, r2[i].gates);
    EXPECT_EQ(r1[i].tree_activity, r2[i].tree_activity);
    EXPECT_EQ(static_cast<int>(r1[i].status.state),
              static_cast<int>(r2[i].status.state));
  }
}

TEST(FlowSession, IntraBatchDuplicatesAreShared) {
  const Library& lib = standard_library();
  FlowSession session(lib);  // cache off: dedup is within one batch only

  Network net = random_network(9);
  prepare_network(net);
  const std::vector<const Network*> batch = {&net, &net, &net};
  const auto rs = session.run_suite(batch);
  ASSERT_EQ(rs.size(), 3u);
  // One set of passes despite three submissions.
  EXPECT_EQ(session.counters().decomp_passes, 3);
  EXPECT_EQ(session.counters().activity_passes, 3);
  EXPECT_EQ(session.counters().map_passes, 6);
  for (std::size_t m = 0; m < 6; ++m) {
    EXPECT_EQ(rs[0][m].area, rs[1][m].area);
    EXPECT_EQ(rs[0][m].power_uw, rs[2][m].power_uw);
  }
}

TEST(FlowSession, BoundedCachesEvict) {
  const Library& lib = standard_library();
  SessionOptions so;
  so.enable_cache = true;
  so.group_cache_capacity = 3;   // one circuit's worth
  so.result_cache_capacity = 6;  // one circuit's worth
  FlowSession session(lib, EngineOptions{}, so);

  SessionStats delta;
  for (std::uint64_t seed = 20; seed < 24; ++seed) {
    Network net = random_network(seed);
    prepare_network(net);
    session.run_circuit(net, session.options().flow, &delta);
  }
  EXPECT_GT(session.stats().evictions, 0u);

  // The most recent circuit is still resident.
  Network last = random_network(23);
  prepare_network(last);
  session.run_circuit(last, session.options().flow, &delta);
  EXPECT_EQ(delta.result_hits, 6u);
}

TEST(FlowSession, FaultInjectionBypassesCache) {
  const Library& lib = standard_library();
  Network net = random_network(11);
  prepare_network(net);

  // A session with an armed fault must bypass cache and dedup entirely so
  // the injected ordinal hits a live task — and must not poison the cache.
  EngineOptions eo;
  eo.injections.push_back(FaultInjection{"decomp", 0});
  SessionOptions so;
  so.enable_cache = true;
  FlowSession session(lib, eo, so);
  const std::vector<FlowResult> rs = session.run_circuit(net);
  EXPECT_EQ(session.stats().lookups(), 0u);
  // Group 0 failed; methods I and IV inherit the failure.
  EXPECT_EQ(rs[0].status.state, TaskState::kFailed);
  EXPECT_EQ(rs[3].status.state, TaskState::kFailed);
  EXPECT_EQ(rs[1].status.state, TaskState::kOk);
}

}  // namespace
}  // namespace minpower
