// Unit tests of the verification oracles themselves: each oracle must both
// accept the genuine pipeline output (positive cases) and catch an injected
// defect (negative cases), so a silently-vacuous oracle cannot pass CI.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "decomp/huffman.hpp"
#include "decomp/network_decompose.hpp"
#include "decomp/package_merge.hpp"
#include "flow/flow.hpp"
#include "helpers.hpp"
#include "library/library.hpp"
#include "map/mapper.hpp"
#include "power/report.hpp"
#include "util/rng.hpp"
#include "verify/verify.hpp"

namespace minpower {
namespace {

using verify::VerifyOptions;
using verify::VerifyReport;

MapResult map_random_circuit(std::uint64_t seed, Network& subject_out) {
  Network net = testing::random_network(seed);
  prepare_network(net);
  NetworkDecompOptions d;
  d.algorithm = DecompAlgorithm::kMinPower;
  subject_out = decompose_network(net, d).network;
  MapOptions m;
  m.objective = MapObjective::kPower;
  return map_network(subject_out, standard_library(), m);
}

TEST(MappedEquivalence, AcceptsGenuineMapping) {
  for (const std::uint64_t seed : {11u, 22u, 33u}) {
    Network net = testing::random_network(seed);
    Network optimized = net.duplicate();
    prepare_network(optimized);
    Network subject;
    const MapResult r = map_random_circuit(seed, subject);
    EXPECT_TRUE(verify::mapped_network_equivalent(optimized, r.mapped))
        << "seed " << seed;
    // Also against the pre-optimization source: same functions.
    EXPECT_TRUE(verify::mapped_network_equivalent(net, r.mapped))
        << "seed " << seed;
  }
}

TEST(MappedEquivalence, RejectsCorruptedPoBinding) {
  Network subject;
  MapResult r = map_random_circuit(7, subject);
  Network net = testing::random_network(7);
  ASSERT_TRUE(verify::mapped_network_equivalent(net, r.mapped));
  // Swap two PO drivers — must be caught unless they coincide.
  ASSERT_GE(r.mapped.po_signal.size(), 2u);
  if (r.mapped.po_signal[0] == r.mapped.po_signal[1]) GTEST_SKIP();
  std::swap(r.mapped.po_signal[0], r.mapped.po_signal[1]);
  EXPECT_FALSE(verify::mapped_network_equivalent(net, r.mapped));
}

TEST(MappedEquivalence, RejectsCorruptedGateChoice) {
  Network subject;
  MapResult r = map_random_circuit(9, subject);
  Network net = testing::random_network(9);
  ASSERT_TRUE(verify::mapped_network_equivalent(net, r.mapped));
  // Swap some single-input gate's cell between inverter and buffer: the
  // opposite polarity flips that signal.
  const Library& lib = standard_library();
  for (MappedGateInst& g : r.mapped.gates) {
    if (g.gate->num_inputs() != 1) continue;
    g.gate = g.gate->name == "buf2" ? &lib.inverter() : lib.find("buf2");
    ASSERT_NE(g.gate, nullptr);
    EXPECT_FALSE(verify::mapped_network_equivalent(net, r.mapped));
    return;
  }
  GTEST_SKIP() << "mapping used no single-input cells";
}

TEST(ExhaustiveProbabilities, MatchesHelperOracle) {
  Rng rng(5);
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const Network net = testing::random_network(seed);
    const std::vector<double> pi_p1 =
        testing::random_probs(rng, static_cast<int>(net.pis().size()));
    const auto a = verify::exhaustive_signal_probabilities(net, pi_p1);
    const auto b = testing::brute_force_probabilities(net, pi_p1);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
      EXPECT_NEAR(a[i], b[i], 1e-12) << "node " << i << " seed " << seed;
  }
}

TEST(MonteCarloPower, IsDeterministicInSeed) {
  Network subject;
  const MapResult r = map_random_circuit(13, subject);
  const PowerParams params = PowerParams::from(MapOptions{});
  const auto a = verify::monte_carlo_power(r.mapped, params, 500, 99);
  const auto b = verify::monte_carlo_power(r.mapped, params, 500, 99);
  EXPECT_EQ(a.power_uw, b.power_uw);
  EXPECT_EQ(a.stderr_uw, b.stderr_uw);
  const auto c = verify::monte_carlo_power(r.mapped, params, 500, 100);
  EXPECT_NE(a.power_uw, c.power_uw);
}

TEST(MonteCarloPower, ConvergesToAnalyticPower) {
  for (const CircuitStyle style :
       {CircuitStyle::kStatic, CircuitStyle::kDynamicP,
        CircuitStyle::kDynamicN}) {
    Network net = testing::random_network(17);
    prepare_network(net);
    NetworkDecompOptions d;
    d.style = style;
    const Network subject = decompose_network(net, d).network;
    MapOptions m;
    m.style = style;
    const MapResult r = map_network(subject, standard_library(), m);
    const PowerParams params = PowerParams::from(m);
    const MappedReport analytic = evaluate_mapped(r.mapped, params);
    const auto mc = verify::monte_carlo_power(r.mapped, params, 4000, 31);
    EXPECT_GT(mc.stderr_uw, 0.0);
    EXPECT_NEAR(mc.power_uw, analytic.power_uw, 6.0 * mc.stderr_uw + 1e-9)
        << "style " << static_cast<int>(style);
  }
}

TEST(ReferenceCosts, LengthLimitedMatchesKnownValues) {
  // Uniform weights at the balanced bound: every leaf at depth ceil(log2 n).
  EXPECT_NEAR(verify::reference_length_limited_cost({1, 1, 1, 1}, 2), 8.0,
              1e-12);
  // Skewed weights, generous bound: plain Huffman depths {1,2,3,3}.
  EXPECT_NEAR(
      verify::reference_length_limited_cost({0.5, 0.25, 0.15, 0.1}, 3),
      0.5 * 1 + 0.25 * 2 + 0.15 * 3 + 0.1 * 3, 1e-12);
  // Same weights squeezed to L=2: forced balanced, cost 2.
  EXPECT_NEAR(
      verify::reference_length_limited_cost({0.5, 0.25, 0.15, 0.1}, 2), 2.0,
      1e-12);
}

TEST(ReferenceCosts, PlainTreeEnumerationAgreesWithBranchAndBound) {
  Rng rng(23);
  for (int n = 2; n <= 6; ++n) {
    const std::vector<double> probs = testing::random_probs(rng, n);
    for (const GateType gate : {GateType::kAnd, GateType::kOr}) {
      for (const CircuitStyle style :
           {CircuitStyle::kStatic, CircuitStyle::kDynamicP,
            CircuitStyle::kDynamicN}) {
        const DecompModel model(gate, style);
        const double bb =
            best_tree_exhaustive(probs, model).internal_cost(model, probs);
        const double plain = verify::reference_best_tree_cost(probs, model);
        EXPECT_NEAR(bb, plain, 1e-9) << "n=" << n;
      }
    }
  }
}

TEST(ReferenceCosts, HeightBoundTightensTheOptimum) {
  const std::vector<double> probs{0.9, 0.8, 0.2, 0.1, 0.5};
  const DecompModel model(GateType::kAnd, CircuitStyle::kStatic);
  const double unbounded = verify::reference_best_tree_cost(probs, model);
  const double bounded =
      verify::reference_best_tree_cost(probs, model, balanced_height(5));
  EXPECT_GE(bounded, unbounded - 1e-12);
}

TEST(VerifyHarness, SeededRunIsCleanAndDeterministic) {
  VerifyOptions o;
  o.seed = 77;
  o.count = 10;
  o.mc_samples = 400;
  const VerifyReport a = verify::run_verification(o);
  EXPECT_TRUE(a.ok()) << (a.failures.empty() ? ""
                                             : a.failures.front().detail);
  EXPECT_EQ(a.circuits, 10);
  EXPECT_GT(a.equivalence_checks, 0);
  EXPECT_GT(a.activity_checks, 0);
  EXPECT_GT(a.monte_carlo_checks, 0);
  EXPECT_GT(a.tree_checks, 0);
  EXPECT_GT(a.curve_checks, 0);

  const VerifyReport b = verify::run_verification(o);
  EXPECT_EQ(a.equivalence_checks, b.equivalence_checks);
  EXPECT_EQ(a.tree_checks, b.tree_checks);
  EXPECT_EQ(a.modified_huffman_optimal, b.modified_huffman_optimal);
}

TEST(VerifyHarness, CheckTogglesLimitScope) {
  VerifyOptions o;
  o.seed = 5;
  o.count = 3;
  o.check_circuits = false;
  o.check_curves = false;
  const VerifyReport r = verify::run_verification(o);
  EXPECT_EQ(r.circuits, 0);
  EXPECT_EQ(r.curve_checks, 0);
  EXPECT_GT(r.tree_checks, 0);
}

TEST(VerifyHarness, JsonReportRoundTripsTheCounters) {
  VerifyOptions o;
  o.seed = 3;
  o.count = 2;
  o.mc_samples = 200;
  VerifyReport r = verify::run_verification(o);
  r.failures.push_back({"demo-check", 42, "synthetic failure for the test"});
  std::ostringstream os;
  verify::write_verify_json(os, o, r);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"schema\": \"minpower.verify.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"ok\": false"), std::string::npos);
  EXPECT_NE(json.find("\"check\": \"demo-check\""), std::string::npos);
  EXPECT_NE(json.find("minpower verify --seed 42 --count 1"),
            std::string::npos);
}

}  // namespace
}  // namespace minpower
