// Flow- and mapper-option plumbing: the knobs a downstream user will turn.

#include <gtest/gtest.h>

#include "flow/flow.hpp"
#include "helpers.hpp"
#include "power/report.hpp"

namespace minpower {
namespace {

Network prepared(std::uint64_t seed) {
  Network net = testing::random_network(seed, 7, 16, 3);
  prepare_network(net);
  return net;
}

TEST(FlowOptions, DagHeuristicChangesResults) {
  Network net = prepared(101);
  if (net.num_internal() == 0) GTEST_SKIP();
  FlowOptions tree;
  tree.dag = DagHeuristic::kTreePartition;
  FlowOptions fo;
  fo.dag = DagHeuristic::kFanoutDivision;
  const FlowResult a = run_method(net, Method::kV, standard_library(), tree);
  const FlowResult b = run_method(net, Method::kV, standard_library(), fo);
  // Both valid mappings of the same subject; diagnostics identical.
  EXPECT_DOUBLE_EQ(a.tree_activity, b.tree_activity);
  EXPECT_GT(a.power_uw, 0.0);
  EXPECT_GT(b.power_uw, 0.0);
}

TEST(FlowOptions, PoLoadRaisesPowerAndDelay) {
  Network net = prepared(102);
  if (net.num_internal() == 0) GTEST_SKIP();
  FlowOptions light;
  light.po_load = 0.5;
  FlowOptions heavy;
  heavy.po_load = 8.0;
  const FlowResult a = run_method(net, Method::kIV, standard_library(), light);
  const FlowResult b = run_method(net, Method::kIV, standard_library(), heavy);
  EXPECT_LT(a.power_uw, b.power_uw);
  EXPECT_LT(a.delay, b.delay);
}

TEST(FlowOptions, RelaxFactorTradesDelayForPower) {
  Network net = prepared(103);
  if (net.num_internal() == 0) GTEST_SKIP();
  FlowOptions tight;
  tight.policy = RequiredTimePolicy::kMinDelay;
  FlowOptions loose;
  loose.policy = RequiredTimePolicy::kRelaxedMinDelay;
  loose.relax_factor = 2.0;
  const FlowResult a = run_method(net, Method::kIV, standard_library(), tight);
  const FlowResult b = run_method(net, Method::kIV, standard_library(), loose);
  EXPECT_LE(b.power_uw, a.power_uw * 1.001);  // slack never costs power
}

TEST(FlowOptions, EpsilonAffectsOnlyQualityNotValidity) {
  Network net = prepared(104);
  if (net.num_internal() == 0) GTEST_SKIP();
  FlowOptions coarse;
  coarse.epsilon_t = 2.0;
  const FlowResult r = run_method(net, Method::kV, standard_library(), coarse);
  EXPECT_GT(r.gates, 0u);
  EXPECT_GT(r.power_uw, 0.0);
}

TEST(FlowOptions, StylePropagatesToDecompositionAndScoring) {
  Network net = prepared(105);
  if (net.num_internal() == 0) GTEST_SKIP();
  FlowOptions dynamic;
  dynamic.style = CircuitStyle::kDynamicP;
  const FlowResult stat = run_method(net, Method::kV, standard_library());
  const FlowResult dyn =
      run_method(net, Method::kV, standard_library(), dynamic);
  EXPECT_NE(stat.tree_activity, dyn.tree_activity);
  EXPECT_NE(stat.power_uw, dyn.power_uw);
}

TEST(FlowOptions, BiasedPiProbabilitiesChangeMethodVPower) {
  // Regression: FlowOptions used to silently drop user-supplied PI
  // statistics — decomposition, mapping and power reporting all saw the
  // uniform 0.5 default. Biased probabilities must change the Method V
  // result end to end.
  Network net = prepared(110);
  if (net.num_internal() == 0) GTEST_SKIP();
  FlowOptions biased;
  biased.pi_prob1.assign(net.pis().size(), 0.95);
  const FlowResult base = run_method(net, Method::kV, standard_library());
  const FlowResult skew =
      run_method(net, Method::kV, standard_library(), biased);
  // The bias reaches the decomposition objective (probability-weighted tree
  // activity) and the power report.
  EXPECT_NE(skew.tree_activity, base.tree_activity);
  EXPECT_NE(skew.power_uw, base.power_uw);
}

TEST(FlowOptions, PiArrivalReachesMappingAndReporting) {
  Network net = prepared(111);
  if (net.num_internal() == 0) GTEST_SKIP();
  FlowOptions late;
  late.pi_arrival.assign(net.pis().size(), 7.0);
  const FlowResult base = run_method(net, Method::kIV, standard_library());
  const FlowResult shifted =
      run_method(net, Method::kIV, standard_library(), late);
  // Every path now starts 7 ns late; the reported critical path must
  // reflect it.
  EXPECT_GE(shifted.delay, 7.0);
  EXPECT_GT(shifted.delay, base.delay);
}

TEST(MapperOptions, PrecomputedActivitiesMatchInternal) {
  Network raw = testing::random_network(106, 6, 12, 3);
  NetworkDecompOptions d;
  const Network subject = decompose_network(raw, d).network;

  MapOptions internal;
  const MapResult a = map_network(subject, standard_library(), internal);

  MapOptions external;
  external.activities =
      switching_activities(subject, CircuitStyle::kStatic);
  const MapResult b = map_network(subject, standard_library(), external);

  const MappedReport ra = evaluate_mapped(a.mapped, PowerParams::from(internal));
  const MappedReport rb = evaluate_mapped(b.mapped, PowerParams::from(external));
  EXPECT_DOUBLE_EQ(ra.power_uw, rb.power_uw);
  EXPECT_DOUBLE_EQ(ra.area, rb.area);
}

TEST(MapperOptions, PiArrivalShiftsRequiredTimes) {
  Network raw = testing::random_network(107, 6, 12, 2);
  NetworkDecompOptions d;
  const Network subject = decompose_network(raw, d).network;
  MapOptions base;
  base.policy = RequiredTimePolicy::kMinDelay;
  const MapResult a = map_network(subject, standard_library(), base);
  MapOptions late;
  late.policy = RequiredTimePolicy::kMinDelay;
  late.pi_arrival.assign(subject.pis().size(), 5.0);
  const MapResult b = map_network(subject, standard_library(), late);
  // Every required time shifts by exactly the input arrival.
  for (std::size_t i = 0; i < a.po_required_used.size(); ++i)
    EXPECT_NEAR(b.po_required_used[i], a.po_required_used[i] + 5.0, 1e-9);
}

TEST(MapperOptions, Method2AccountingStillMapsCorrectly) {
  Network raw = testing::random_network(108, 6, 12, 3);
  NetworkDecompOptions d;
  const Network subject = decompose_network(raw, d).network;
  MapOptions m2;
  m2.accounting = PowerAccounting::kMethod2;
  const MapResult r = map_network(subject, standard_library(), m2);
  r.mapped.check();
  Rng rng(9);
  for (int t = 0; t < 40; ++t) {
    std::vector<bool> pi(subject.pis().size());
    for (std::size_t i = 0; i < pi.size(); ++i) pi[i] = rng.coin();
    EXPECT_EQ(r.mapped.eval(pi), subject.eval(pi));
  }
}

}  // namespace
}  // namespace minpower
