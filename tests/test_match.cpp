#include <gtest/gtest.h>

#include <algorithm>

#include "helpers.hpp"
#include "map/match.hpp"
#include "decomp/network_decompose.hpp"

namespace minpower {
namespace {

bool has_gate(const std::vector<Match>& ms, const std::string& name) {
  return std::any_of(ms.begin(), ms.end(), [&](const Match& m) {
    return m.gate->name == name;
  });
}

TEST(Match, InverterNode) {
  Network net("inv");
  const NodeId a = net.add_pi("a");
  const NodeId i = net.add_inv(a);
  net.add_po("f", i);
  const auto ms = find_matches(net, i, standard_library());
  EXPECT_TRUE(has_gate(ms, "inv1"));
  EXPECT_TRUE(has_gate(ms, "inv2"));
  EXPECT_TRUE(has_gate(ms, "inv4"));
  EXPECT_FALSE(has_gate(ms, "nand2"));
}

TEST(Match, NandNode) {
  Network net("nand");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId n = net.add_nand2(a, b);
  net.add_po("f", n);
  const auto ms = find_matches(net, n, standard_library());
  EXPECT_TRUE(has_gate(ms, "nand2"));
  EXPECT_FALSE(has_gate(ms, "inv1"));
}

TEST(Match, And2AtInvOfNand) {
  Network net("and2");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId n = net.add_nand2(a, b);
  const NodeId i = net.add_inv(n);
  net.add_po("f", i);
  const auto ms = find_matches(net, i, standard_library());
  EXPECT_TRUE(has_gate(ms, "and2"));
  // The AND2 match covers both subject nodes.
  for (const Match& m : ms)
    if (m.gate->name == "and2") EXPECT_EQ(m.covered.size(), 2u);
}

TEST(Match, Nand3AcrossTwoLevels) {
  // NAND3 shape: NAND(a, INV(NAND(b, c))).
  Network net("nand3");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId c = net.add_pi("c");
  const NodeId bc = net.add_nand2(b, c);
  const NodeId ibc = net.add_inv(bc);
  const NodeId top = net.add_nand2(a, ibc);
  net.add_po("f", top);
  const auto ms = find_matches(net, top, standard_library());
  EXPECT_TRUE(has_gate(ms, "nand3"));
  EXPECT_TRUE(has_gate(ms, "nand2"));  // smaller match still available
}

TEST(Match, MultiFanoutBlocksCovering) {
  // Same NAND3 shape, but the inner NAND has a second reader: the nand3
  // match would swallow a shared node and must be rejected.
  Network net("shared");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId c = net.add_pi("c");
  const NodeId bc = net.add_nand2(b, c);
  const NodeId ibc = net.add_inv(bc);
  const NodeId top = net.add_nand2(a, ibc);
  const NodeId other = net.add_inv(bc);  // second reader of bc
  net.add_po("f", top);
  net.add_po("g", other);
  const auto ms = find_matches(net, top, standard_library());
  EXPECT_FALSE(has_gate(ms, "nand3"));
  EXPECT_TRUE(has_gate(ms, "nand2"));
}

TEST(Match, Aoi21Shape) {
  // !(a·b + c) = NAND2/INV subject: or(x,y) = nand(!x,!y):
  // f = NAND(INV(nand(a,b)→ab')… construct the canonical decomposed form:
  // ab = INV(NAND(a,b)); f = NAND? Let's build !(ab + c) = INV(OR(ab,c))
  // = INV(NAND(INV(ab), INV(c))) — too many inverters; the matcher works on
  // whatever structure exists, so build the NOR-of-AND directly:
  // t = NAND(INV(NAND(a,b)), ...) — use the standard aoi21 pattern shape:
  // !(a·b + c) = !(a·b)·!c = NAND? It equals AND(NAND(a,b), INV(c)) =
  // INV(NAND(NAND(a,b), INV(c))).
  Network net("aoi21");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId c = net.add_pi("c");
  const NodeId nab = net.add_nand2(a, b);
  const NodeId ic = net.add_inv(c);
  const NodeId x = net.add_nand2(nab, ic);
  const NodeId f = net.add_inv(x);
  net.add_po("f", f);
  const auto ms = find_matches(net, f, standard_library());
  EXPECT_TRUE(has_gate(ms, "aoi21")) << [&] {
    std::string names;
    for (const Match& m : ms) names += m.gate->name + " ";
    return names;
  }();
}

TEST(Match, PinBindingIsConsistentForLeafDag) {
  // XOR subject: a·!b + !a·b decomposed; xor2 should match with both pins
  // bound consistently. Build: u = NAND(a, INV(b)), v = NAND(INV(a), b),
  // f = NAND(u, v).
  Network net("xor");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId ia = net.add_inv(a);
  const NodeId ib = net.add_inv(b);
  const NodeId u = net.add_nand2(a, ib);
  const NodeId v = net.add_nand2(ia, b);
  const NodeId f = net.add_nand2(u, v);
  net.add_po("f", f);
  const auto ms = find_matches(net, f, standard_library());
  if (has_gate(ms, "xor2")) {
    for (const Match& m : ms)
      if (m.gate->name == "xor2") {
        ASSERT_EQ(m.pin_binding.size(), 2u);
        EXPECT_NE(m.pin_binding[0], m.pin_binding[1]);
        for (NodeId s : m.pin_binding) EXPECT_TRUE(net.node(s).is_pi());
      }
  } else {
    // The generated pattern set for xor may not include this exact inverter
    // placement; at minimum the top NAND must match.
    EXPECT_TRUE(has_gate(ms, "nand2"));
  }
}

// Property: every match's gate function applied to its pin bindings equals
// the subject root's global function (validated by simulation).
class MatchCorrectness : public ::testing::TestWithParam<int> {};

TEST_P(MatchCorrectness, GateFunctionEqualsSubjectFunction) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Network raw = testing::random_network(seed + 300, 5, 8, 2);
  NetworkDecompOptions d;
  Network net = decompose_network(raw, d).network;
  const Library& lib = standard_library();

  const std::size_t npis = net.pis().size();
  ASSERT_LE(npis, 12u);
  for (NodeId id = 0; id < static_cast<NodeId>(net.capacity()); ++id) {
    if (!net.node(id).is_internal()) continue;
    const auto ms = find_matches(net, id, lib);
    for (const Match& m : ms) {
      if (m.covered.empty()) continue;
      const auto names = m.gate->function->variables();
      // Check on 40 random assignments.
      Rng rng(seed * 97 + static_cast<std::uint64_t>(id));
      for (int t = 0; t < 40; ++t) {
        std::vector<bool> pi(npis);
        for (std::size_t i = 0; i < npis; ++i) pi[i] = rng.coin();
        // Evaluate the whole subject network.
        std::vector<char> value(net.capacity(), 0);
        for (std::size_t i = 0; i < npis; ++i)
          value[static_cast<std::size_t>(net.pis()[i])] = pi[i];
        for (NodeId nid : net.topo_order()) {
          const Node& n = net.node(nid);
          if (n.kind == NodeKind::kConstant1)
            value[static_cast<std::size_t>(nid)] = 1;
          if (!n.is_internal()) continue;
          std::uint64_t assignment = 0;
          for (std::size_t i = 0; i < n.fanins.size(); ++i)
            if (value[static_cast<std::size_t>(n.fanins[i])])
              assignment |= std::uint64_t{1} << i;
          value[static_cast<std::size_t>(nid)] = n.cover.eval(assignment);
        }
        std::vector<bool> pin_values;
        for (NodeId s : m.pin_binding)
          pin_values.push_back(value[static_cast<std::size_t>(s)] != 0);
        EXPECT_EQ(m.gate->function->eval(names, pin_values),
                  value[static_cast<std::size_t>(id)] != 0)
            << "gate " << m.gate->name << " at node " << net.node(id).name;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Random, MatchCorrectness, ::testing::Range(0, 10));

}  // namespace
}  // namespace minpower
