#include <gtest/gtest.h>

#include "io/blif.hpp"
#include "prob/sequential.hpp"

namespace minpower {
namespace {

TEST(InferLatches, FromReaderConvention) {
  const std::string text = R"(
.model seq
.inputs a
.outputs f
.latch nq q 0
.names a q f
11 1
.names q nq
0 1
.end
)";
  const Network net = read_blif_string(text);
  const auto latches = infer_latches(net);
  ASSERT_EQ(latches.size(), 1u);
  EXPECT_EQ(net.node(net.pis()[latches[0].pi_index]).name, "q");
  EXPECT_EQ(net.pos()[latches[0].po_index].name, "q__next");
}

TEST(InferLatches, NoneInCombinationalCircuit) {
  Network net("comb");
  const NodeId a = net.add_pi("a");
  net.add_po("f", net.add_inv(a));
  EXPECT_TRUE(infer_latches(net).empty());
}

Network toggle_ff() {
  // q' = !q (toggle flip-flop): fixpoint P(q) = 0.5 from any start.
  Network net("toggle");
  const NodeId q = net.add_pi("q");
  net.add_po("q__next", net.add_inv(q));
  return net;
}

TEST(SequentialProb, ToggleConvergesToHalf) {
  Network net = toggle_ff();
  SequentialProbOptions o;
  o.initial_state_prob1 = {0.9};
  const auto r =
      sequential_pi_probabilities(net, infer_latches(net), o);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.pi_prob1[0], 0.5, 1e-6);
}

TEST(SequentialProb, DecayingStateGoesToZero) {
  // q' = q · e with P(e) = 0.8: fixpoint p = 0.8p → p = 0.
  Network net("decay");
  const NodeId q = net.add_pi("q");
  const NodeId e = net.add_pi("e");
  net.add_po("q__next", net.add_and2(q, e));
  SequentialProbOptions o;
  o.free_pi_prob1 = {0.8};
  o.initial_state_prob1 = {1.0};
  const auto r =
      sequential_pi_probabilities(net, infer_latches(net), o);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.pi_prob1[0], 0.0, 1e-6);
}

TEST(SequentialProb, SetDominantSaturates) {
  // q' = q + s with P(s) = 0.3: p → 1 (absorbing set).
  Network net("setdom");
  const NodeId q = net.add_pi("q");
  const NodeId s = net.add_pi("s");
  net.add_po("q__next", net.add_or2(q, s));
  SequentialProbOptions o;
  o.free_pi_prob1 = {0.3};
  o.initial_state_prob1 = {0.0};
  const auto r =
      sequential_pi_probabilities(net, infer_latches(net), o);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.pi_prob1[0], 1.0, 1e-6);
}

TEST(SequentialProb, AnalyticFixpoint) {
  // q' = s ⊕ q with P(s) = p: P(q') = p(1-q) + (1-p)q; fixpoint q = 0.5 for
  // any p ≠ 0.5... solving q = p + q - 2pq → 0 = p - 2pq → q = 0.5.
  Network net("xorfb");
  const NodeId q = net.add_pi("q");
  const NodeId s = net.add_pi("s");
  Cover x{{Cube::literal(0, true) & Cube::literal(1, false),
           Cube::literal(0, false) & Cube::literal(1, true)}};
  net.add_po("q__next", net.add_node({q, s}, x, "x"));
  SequentialProbOptions o;
  o.free_pi_prob1 = {0.2};
  o.initial_state_prob1 = {0.1};
  const auto r =
      sequential_pi_probabilities(net, infer_latches(net), o);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.pi_prob1[0], 0.5, 1e-6);
}

TEST(SequentialProb, FreePiProbabilitiesAreKept) {
  Network net("decay2");
  const NodeId q = net.add_pi("q");
  const NodeId e = net.add_pi("e");
  net.add_po("q__next", net.add_and2(q, e));
  SequentialProbOptions o;
  o.free_pi_prob1 = {0.35};
  const auto r =
      sequential_pi_probabilities(net, infer_latches(net), o);
  // PI order: q (latch), e (free) — e's probability must be preserved.
  EXPECT_DOUBLE_EQ(r.pi_prob1[1], 0.35);
}

TEST(SequentialProb, TwoCoupledLatches) {
  // Shift register: q1' = d, q2' = q1 with P(d) = 0.7: both converge to 0.7.
  Network net("shift");
  const NodeId q1 = net.add_pi("q1");
  const NodeId q2 = net.add_pi("q2");
  (void)q2;
  const NodeId d = net.add_pi("d");
  net.add_po("q1__next", net.add_buf(d, "b1"));
  net.add_po("q2__next", net.add_buf(q1, "b2"));
  SequentialProbOptions o;
  o.free_pi_prob1 = {0.7};
  const auto r =
      sequential_pi_probabilities(net, infer_latches(net), o);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.pi_prob1[0], 0.7, 1e-9);
  EXPECT_NEAR(r.pi_prob1[1], 0.7, 1e-9);
}

}  // namespace
}  // namespace minpower
