#include <gtest/gtest.h>

#include "decomp/network_decompose.hpp"
#include "helpers.hpp"
#include "map/mapper.hpp"
#include "power/report.hpp"
#include "util/rng.hpp"

namespace minpower {
namespace {

Network decomposed(std::uint64_t seed, int pi = 6, int nodes = 12, int po = 3) {
  Network raw = testing::random_network(seed, pi, nodes, po);
  NetworkDecompOptions d;
  return decompose_network(raw, d).network;
}

TEST(Mapper, MapsTinyAnd) {
  Network net("tiny");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId n = net.add_nand2(a, b);
  const NodeId i = net.add_inv(n);
  net.add_po("f", i);

  MapOptions o;
  const MapResult r = map_network(net, standard_library(), o);
  EXPECT_GE(r.mapped.num_gates(), 1u);
  // The and2 single-gate cover should win on power (fewest exposed nets).
  EXPECT_LE(r.mapped.num_gates(), 2u);
  EXPECT_TRUE(r.mapped.eval({true, true})[0]);
  EXPECT_FALSE(r.mapped.eval({true, false})[0]);
}

TEST(Mapper, PoDrivenByPiNeedsNoGate) {
  Network net("wirepo");
  const NodeId a = net.add_pi("a");
  net.add_po("f", a);
  MapOptions o;
  const MapResult r = map_network(net, standard_library(), o);
  EXPECT_EQ(r.mapped.num_gates(), 0u);
  EXPECT_TRUE(r.mapped.eval({true})[0]);
}

// Property: mapping preserves function for both objectives and both DAG
// heuristics, on random decomposed networks.
struct MapCase {
  MapObjective objective;
  DagHeuristic dag;
};

class MapperFunction
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MapperFunction, PreservesFunction) {
  const auto [seed_int, mode] = GetParam();
  const auto seed = static_cast<std::uint64_t>(seed_int);
  Network net = decomposed(seed + 40, 6, 10, 3);
  MapOptions o;
  o.objective = (mode & 1) ? MapObjective::kArea : MapObjective::kPower;
  o.dag = (mode & 2) ? DagHeuristic::kTreePartition
                     : DagHeuristic::kFanoutDivision;
  const MapResult r = map_network(net, standard_library(), o);
  r.mapped.check();

  // Compare on random vectors.
  Rng rng(seed * 3 + 7);
  const std::size_t npis = net.pis().size();
  for (int t = 0; t < 60; ++t) {
    std::vector<bool> pi(npis);
    for (std::size_t i = 0; i < npis; ++i) pi[i] = rng.coin();
    EXPECT_EQ(r.mapped.eval(pi), net.eval(pi)) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Random, MapperFunction,
                         ::testing::Combine(::testing::Range(0, 12),
                                            ::testing::Range(0, 4)));

TEST(Mapper, AreaObjectiveGivesSmallerOrEqualArea) {
  double area_obj = 0.0;
  double power_obj = 0.0;
  for (std::uint64_t seed = 60; seed < 70; ++seed) {
    Network net = decomposed(seed, 7, 14, 3);
    MapOptions oa;
    oa.objective = MapObjective::kArea;
    MapOptions op;
    op.objective = MapObjective::kPower;
    const MapResult ra = map_network(net, standard_library(), oa);
    const MapResult rp = map_network(net, standard_library(), op);
    area_obj += ra.mapped.total_area();
    power_obj += rp.mapped.total_area();
  }
  EXPECT_LE(area_obj, power_obj * 1.02);
}

TEST(Mapper, PowerObjectiveGivesLowerOrEqualPower) {
  double p_area_mapped = 0.0;
  double p_power_mapped = 0.0;
  for (std::uint64_t seed = 80; seed < 92; ++seed) {
    Network net = decomposed(seed, 7, 14, 3);
    MapOptions oa;
    oa.objective = MapObjective::kArea;
    MapOptions op;
    op.objective = MapObjective::kPower;
    const MapResult ra = map_network(net, standard_library(), oa);
    const MapResult rp = map_network(net, standard_library(), op);
    p_area_mapped += evaluate_mapped(ra.mapped, PowerParams::from(oa)).power_uw;
    p_power_mapped += evaluate_mapped(rp.mapped, PowerParams::from(op)).power_uw;
  }
  EXPECT_LE(p_power_mapped, p_area_mapped * 1.01);
}

TEST(Mapper, UnconstrainedIsCheapestPolicy) {
  Network net = decomposed(99, 7, 14, 3);
  MapOptions tight;
  tight.policy = RequiredTimePolicy::kMinDelay;
  MapOptions loose;
  loose.policy = RequiredTimePolicy::kUnconstrained;
  const MapResult rt = map_network(net, standard_library(), tight);
  const MapResult rl = map_network(net, standard_library(), loose);
  const double pt_uw =
      evaluate_mapped(rt.mapped, PowerParams::from(tight)).power_uw;
  const double pl_uw =
      evaluate_mapped(rl.mapped, PowerParams::from(loose)).power_uw;
  EXPECT_LE(pl_uw, pt_uw * 1.001);
  // And the tight mapping should be at least as fast.
  const double dt = evaluate_mapped(rt.mapped, PowerParams::from(tight)).delay;
  const double dl = evaluate_mapped(rl.mapped, PowerParams::from(loose)).delay;
  EXPECT_LE(dt, dl * 1.10 + 0.5);
}

TEST(Mapper, EpsilonPruningTradesCurveSizeForQuality) {
  Network net = decomposed(123, 7, 16, 3);
  MapOptions fine;
  fine.epsilon_t = 0.0;
  MapOptions coarse;
  coarse.epsilon_t = 1.0;
  const MapResult rf = map_network(net, standard_library(), fine);
  const MapResult rc = map_network(net, standard_library(), coarse);
  EXPECT_GE(rf.total_curve_points, rc.total_curve_points);
  const double pf = evaluate_mapped(rf.mapped, PowerParams::from(fine)).power_uw;
  const double pc =
      evaluate_mapped(rc.mapped, PowerParams::from(coarse)).power_uw;
  EXPECT_LE(pf, pc * 1.25);  // coarse pruning cannot be drastically better
}

TEST(Mapper, ExplicitRequiredTimesAreUsed) {
  Network net = decomposed(321, 6, 10, 2);
  MapOptions o;
  o.po_required.assign(net.pos().size(), 1000.0);  // hopelessly loose
  const MapResult r = map_network(net, standard_library(), o);
  for (double x : r.po_required_used) EXPECT_DOUBLE_EQ(x, 1000.0);
}

TEST(Mapper, EveryPoIsDriven) {
  Network net = decomposed(555, 6, 12, 4);
  MapOptions o;
  const MapResult r = map_network(net, standard_library(), o);
  ASSERT_EQ(r.mapped.po_signal.size(), net.pos().size());
  for (std::size_t i = 0; i < net.pos().size(); ++i)
    EXPECT_EQ(r.mapped.po_signal[i], net.pos()[i].driver);
}

TEST(Mapper, ConstantPoNeedsNoGate) {
  Network net("constpo");
  net.add_pi("a");
  const NodeId one = net.add_constant(true, "one");
  net.add_po("f", one);
  MapOptions o;
  const MapResult r = map_network(net, standard_library(), o);
  EXPECT_EQ(r.mapped.num_gates(), 0u);
  EXPECT_TRUE(r.mapped.eval({false})[0]);
  const MappedReport rep = evaluate_mapped(r.mapped, PowerParams::from(o));
  EXPECT_DOUBLE_EQ(rep.power_uw, 0.0);  // constant net: zero activity
  EXPECT_DOUBLE_EQ(rep.delay, 0.0);
}

TEST(Mapper, SharedLogicMappedOnceInDagMode) {
  // A NAND read by two POs must be emitted as one gate, not duplicated.
  Network net("shared");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId n = net.add_nand2(a, b);
  net.add_po("f", n);
  net.add_po("g", n);
  MapOptions o;
  const MapResult r = map_network(net, standard_library(), o);
  EXPECT_EQ(r.mapped.num_gates(), 1u);
  EXPECT_EQ(r.mapped.po_signal[0], r.mapped.po_signal[1]);
}

TEST(Mapper, DeepInverterChainsMapAsInverters) {
  // Odd-length INV chains cannot be collapsed; the mapper must still cover
  // them (possibly pairing into buffers is not available — inv only).
  Network net("chain");
  NodeId x = net.add_pi("a");
  for (int i = 0; i < 7; ++i) x = net.add_inv(x);
  net.add_po("f", x);
  MapOptions o;
  const MapResult r = map_network(net, standard_library(), o);
  EXPECT_GE(r.mapped.num_gates(), 1u);
  EXPECT_TRUE(r.mapped.eval({true})[0] == false);  // odd inversions
}

TEST(Mapper, MatchesAndCurvesAccumulate) {
  Network net = decomposed(778, 6, 12, 3);
  ASSERT_GT(net.num_internal(), 0u) << "degenerate circuit; pick another seed";
  MapOptions o;
  const MapResult r = map_network(net, standard_library(), o);
  EXPECT_GT(r.total_matches, net.num_internal());
  EXPECT_GT(r.total_curve_points, 0u);
}

}  // namespace
}  // namespace minpower
