#include <gtest/gtest.h>

#include "decomp/network_decompose.hpp"
#include "helpers.hpp"
#include "prob/pattern_model.hpp"
#include "prob/probability.hpp"

namespace minpower {
namespace {

Network and_or_net() {
  // f = (a·b) + c
  Network net("tiny");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId c = net.add_pi("c");
  const NodeId ab = net.add_and2(a, b, "ab");
  const NodeId f = net.add_or2(ab, c, "f");
  net.add_po("out", f);
  return net;
}

PatternModel two_pattern_model(const Network& net) {
  // Half the time (1,1,0), half the time (0,0,1).
  std::vector<InputPattern> ps;
  ps.push_back({{true, true, false}, 0.5});
  ps.push_back({{false, false, true}, 0.5});
  return PatternModel(net, std::move(ps));
}

TEST(PatternModel, NormalizesWeights) {
  Network net = and_or_net();
  std::vector<InputPattern> ps;
  ps.push_back({{true, true, false}, 2.0});
  ps.push_back({{false, false, true}, 6.0});
  PatternModel m(net, std::move(ps));
  EXPECT_DOUBLE_EQ(m.patterns()[0].weight, 0.25);
  EXPECT_DOUBLE_EQ(m.patterns()[1].weight, 0.75);
}

TEST(PatternModel, NodeProbabilities) {
  Network net = and_or_net();
  const PatternModel m = two_pattern_model(net);
  EXPECT_DOUBLE_EQ(m.probability(net.find("a")), 0.5);
  EXPECT_DOUBLE_EQ(m.probability(net.find("ab")), 0.5);  // fires on pattern 1
  EXPECT_DOUBLE_EQ(m.probability(net.find("f")), 1.0);   // fires on both
}

TEST(PatternModel, JointCapturesCorrelation) {
  Network net = and_or_net();
  const PatternModel m = two_pattern_model(net);
  const NodeId a = net.find("a");
  const NodeId c = net.find("c");
  // a and c are perfectly anti-correlated in this distribution.
  EXPECT_DOUBLE_EQ(m.joint(a, c), 0.0);
  EXPECT_DOUBLE_EQ(m.joint(a, net.find("b")), 0.5);  // identical signals
}

TEST(PatternModel, UniformMatchesIndependentBddPath) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Network net = testing::random_network(seed, 6, 10, 2);
    const PatternModel m = PatternModel::uniform(net);
    const auto bdd_p = signal_probabilities(net);
    for (NodeId id = 0; id < static_cast<NodeId>(net.capacity()); ++id) {
      if (net.node(id).is_dead()) continue;
      EXPECT_NEAR(m.probability(id), bdd_p[static_cast<std::size_t>(id)],
                  1e-9)
          << net.node(id).name;
    }
  }
}

TEST(PatternModel, JointsTableIsConsistent) {
  Network net = and_or_net();
  const PatternModel m = two_pattern_model(net);
  const std::vector<NodeId> nodes{net.find("a"), net.find("b"), net.find("c")};
  const JointProbabilities j = m.joints(nodes);
  EXPECT_DOUBLE_EQ(j.prob(0), 0.5);
  EXPECT_DOUBLE_EQ(j.joint(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(j.joint(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(j.cond(0, 1), 1.0);
}

TEST(PatternModel, CubeProbabilityAndJoint) {
  Network net = and_or_net();
  const PatternModel m = two_pattern_model(net);
  const std::vector<NodeId> fanins{net.find("a"), net.find("c")};
  const Cube a_and_not_c = Cube::literal(0, true) & Cube::literal(1, false);
  EXPECT_DOUBLE_EQ(m.cube_probability(fanins, a_and_not_c), 0.5);
  const Cube not_a = Cube::literal(0, false);
  EXPECT_DOUBLE_EQ(m.cube_joint(fanins, a_and_not_c, not_a), 0.0);
  EXPECT_DOUBLE_EQ(m.cube_joint(fanins, not_a, not_a), 0.5);
}

TEST(CorrelatedDecomp, PreservesFunction) {
  for (std::uint64_t seed = 30; seed < 36; ++seed) {
    Network net = testing::random_network(seed, 6, 12, 3);
    // Random but correlated distribution: 6 patterns.
    Rng rng(seed * 3 + 1);
    std::vector<InputPattern> ps;
    for (int k = 0; k < 6; ++k) {
      InputPattern p;
      p.weight = rng.uniform(0.1, 1.0);
      for (std::size_t i = 0; i < net.pis().size(); ++i)
        p.values.push_back(rng.coin());
      ps.push_back(std::move(p));
    }
    const PatternModel model(net, std::move(ps));
    NetworkDecompOptions o;
    o.correlations = &model;
    const auto r = decompose_network(net, o);
    EXPECT_TRUE(networks_equivalent(net, r.network)) << seed;
    EXPECT_TRUE(r.network.is_nand_network());
  }
}

TEST(CorrelatedDecomp, BeatsIndependentOnSkewedDistribution) {
  // An AND4 where two inputs never fire together: correlation-aware
  // decomposition pairs them first; the independent path cannot know.
  Network net("skew");
  std::vector<NodeId> pis;
  for (const char* n : {"a", "b", "c", "d"}) pis.push_back(net.add_pi(n));
  Cover and4{{Cube::literal(0, true) & Cube::literal(1, true) &
              Cube::literal(2, true) & Cube::literal(3, true)}};
  net.add_po("f", net.add_node(pis, and4, "n"));

  // Distribution: a,b anti-correlated; c,d free. 8 patterns.
  std::vector<InputPattern> ps;
  Rng rng(5);
  for (int k = 0; k < 16; ++k) {
    InputPattern p;
    p.weight = 1.0;
    const bool a = rng.coin();
    p.values = {a, !a, rng.coin(), rng.coin()};
    ps.push_back(std::move(p));
  }
  const PatternModel model(net, std::move(ps));

  NetworkDecompOptions corr;
  corr.correlations = &model;
  corr.style = CircuitStyle::kDynamicP;
  const auto rc = decompose_network(net, corr);

  NetworkDecompOptions ind;
  ind.style = CircuitStyle::kDynamicP;
  ind.pi_prob1 = {model.probability(pis[0]), model.probability(pis[1]),
                  model.probability(pis[2]), model.probability(pis[3])};
  const auto ri = decompose_network(net, ind);

  // Score both NAND networks under the TRUE distribution.
  auto true_activity = [&](const Network& nand_net) {
    // Rebuild a pattern model over the decomposed network with the same
    // input distribution (PI names match).
    std::vector<InputPattern> ps2;
    for (const InputPattern& p : model.patterns()) ps2.push_back(p);
    const PatternModel m2(nand_net, std::move(ps2));
    const auto probs = m2.all_probabilities();
    double total = 0.0;
    for (NodeId id = 0; id < static_cast<NodeId>(nand_net.capacity()); ++id)
      if (nand_net.node(id).is_internal())
        total += switching_activity(probs[static_cast<std::size_t>(id)],
                                    CircuitStyle::kDynamicP);
    return total;
  };
  EXPECT_LE(true_activity(rc.network), true_activity(ri.network) + 1e-9);
}

TEST(CorrelatedDecomp, ReportsExactTreeActivity) {
  // Hand-computed: node "ab" contributes one AND-tree node with exact
  // probability P(a∧b) = 0.5 → static activity 2·0.5·0.5 = 0.5; node "f"
  // contributes one OR-tree node with P(ab∨c) = 1 → activity 0. (The
  // NAND/INV realization overhead is deliberately not part of the tree
  // objective — leaf and inverter activity is decomposition-invariant per
  // stage.)
  Network net = and_or_net();
  const PatternModel m = two_pattern_model(net);
  NetworkDecompOptions o;
  o.correlations = &m;
  const auto r = decompose_network(net, o);
  EXPECT_NEAR(r.tree_activity, 0.5, 1e-12);
}

}  // namespace
}  // namespace minpower
