// FlowEngine: shared-decomposition reuse, deterministic parallelism, phase
// instrumentation, and the machine-readable JSON report.

#include <gtest/gtest.h>

#include <sstream>

#include "flow/flow_engine.hpp"
#include "helpers.hpp"

namespace minpower {
namespace {

Network prepared(std::uint64_t seed) {
  Network net = testing::random_network(seed, 7, 16, 3);
  prepare_network(net);
  return net;
}

/// Exact (bitwise) equality of everything except wall times.
void expect_identical(const FlowResult& a, const FlowResult& b) {
  EXPECT_EQ(a.circuit, b.circuit);
  EXPECT_EQ(a.method, b.method);
  EXPECT_EQ(a.area, b.area) << method_name(a.method);
  EXPECT_EQ(a.delay, b.delay) << method_name(a.method);
  EXPECT_EQ(a.power_uw, b.power_uw) << method_name(a.method);
  EXPECT_EQ(a.gates, b.gates) << method_name(a.method);
  EXPECT_EQ(a.tree_activity, b.tree_activity) << method_name(a.method);
  EXPECT_EQ(a.nand_depth, b.nand_depth) << method_name(a.method);
  EXPECT_EQ(a.nand_nodes, b.nand_nodes) << method_name(a.method);
  EXPECT_EQ(a.redecomposed, b.redecomposed) << method_name(a.method);
  EXPECT_EQ(a.phases.bdd_nodes, b.phases.bdd_nodes) << method_name(a.method);
  EXPECT_EQ(a.phases.matches, b.phases.matches) << method_name(a.method);
  EXPECT_EQ(a.phases.curve_points, b.phases.curve_points)
      << method_name(a.method);
}

TEST(FlowEngine, MatchesSixIndependentRunMethodCalls) {
  const Network net = prepared(61);
  ASSERT_GT(net.num_internal(), 0u);
  FlowEngine engine(standard_library());
  const std::vector<FlowResult> shared = engine.run_circuit(net);
  ASSERT_EQ(shared.size(), 6u);
  const Method methods[] = {Method::kI,  Method::kII, Method::kIII,
                            Method::kIV, Method::kV,  Method::kVI};
  for (int i = 0; i < 6; ++i) {
    const FlowResult indep = run_method(net, methods[i], standard_library());
    expect_identical(shared[static_cast<std::size_t>(i)], indep);
  }
}

TEST(FlowEngine, ParallelMatchesSerial) {
  std::vector<Network> nets;
  for (std::uint64_t seed : {62u, 63u, 64u}) nets.push_back(prepared(seed));
  std::vector<const Network*> circuits;
  for (const Network& n : nets) circuits.push_back(&n);

  EngineOptions serial;
  serial.num_threads = 1;
  FlowEngine eng1(standard_library(), serial);
  const auto rs1 = eng1.run_suite(circuits);

  EngineOptions parallel;
  parallel.num_threads = 4;
  FlowEngine eng4(standard_library(), parallel);
  const auto rs4 = eng4.run_suite(circuits);

  ASSERT_EQ(rs1.size(), circuits.size());
  ASSERT_EQ(rs4.size(), circuits.size());
  for (std::size_t c = 0; c < circuits.size(); ++c) {
    ASSERT_EQ(rs1[c].size(), 6u);
    ASSERT_EQ(rs4[c].size(), 6u);
    for (std::size_t m = 0; m < 6; ++m) expect_identical(rs1[c][m], rs4[c][m]);
  }
}

TEST(FlowEngine, ThreePassesPerCircuit) {
  const Network net = prepared(65);
  EngineOptions eo;
  eo.num_threads = 2;
  FlowEngine engine(standard_library(), eo);
  const std::vector<FlowResult> rs = engine.run_circuit(net);
  EXPECT_EQ(engine.counters().decomp_passes, 3);
  EXPECT_EQ(engine.counters().activity_passes, 3);
  EXPECT_EQ(engine.counters().map_passes, 6);
  for (const FlowResult& r : rs) {
    EXPECT_EQ(r.phases.decomp_passes, 3) << method_name(r.method);
    EXPECT_EQ(r.phases.activity_passes, 3) << method_name(r.method);
    EXPECT_TRUE(r.phases.shared_decomp) << method_name(r.method);
    EXPECT_TRUE(r.phases.shared_activity) << method_name(r.method);
  }
  // Counters accumulate across runs.
  engine.run_circuit(net);
  EXPECT_EQ(engine.counters().decomp_passes, 6);
  engine.reset_counters();
  EXPECT_EQ(engine.counters().decomp_passes, 0);
}

TEST(FlowEngine, RunAllMethodsRoutesThroughSharedEngine) {
  const Network net = prepared(66);
  FlowOptions options;
  options.num_threads = 2;
  const std::vector<FlowResult> rs =
      run_all_methods(net, standard_library(), options);
  ASSERT_EQ(rs.size(), 6u);
  for (const FlowResult& r : rs) {
    EXPECT_EQ(r.phases.decomp_passes, 3) << method_name(r.method);
    EXPECT_EQ(r.phases.activity_passes, 3) << method_name(r.method);
    EXPECT_TRUE(r.phases.shared_decomp) << method_name(r.method);
  }
  // Method pairs share decomposition diagnostics, as before.
  EXPECT_DOUBLE_EQ(rs[0].tree_activity, rs[3].tree_activity);
  EXPECT_DOUBLE_EQ(rs[1].tree_activity, rs[4].tree_activity);
  EXPECT_DOUBLE_EQ(rs[2].tree_activity, rs[5].tree_activity);
}

TEST(FlowEngine, PhaseStatsArePopulated) {
  const Network net = prepared(67);
  FlowEngine engine(standard_library());
  for (const FlowResult& r : engine.run_circuit(net)) {
    EXPECT_GT(r.phases.bdd_nodes, 0u) << method_name(r.method);
    EXPECT_GT(r.phases.matches, 0u) << method_name(r.method);
    EXPECT_GT(r.phases.curve_points, 0u) << method_name(r.method);
    EXPECT_GE(r.phases.decomp_ms, 0.0);
    EXPECT_GE(r.phases.activity_ms, 0.0);
    EXPECT_GE(r.phases.map_ms, 0.0);
    EXPECT_GE(r.phases.eval_ms, 0.0);
  }
}

TEST(FlowEngine, BiasedPiStatisticsFlowThrough) {
  // The engine must plumb non-uniform PI statistics exactly like
  // run_method does (regression for the dropped-PI-statistics bug).
  const Network net = prepared(68);
  FlowOptions biased;
  biased.pi_prob1.assign(net.pis().size(), 0.9);
  EngineOptions eo;
  eo.flow = biased;
  FlowEngine engine(standard_library(), eo);
  const std::vector<FlowResult> shared = engine.run_circuit(net);
  const FlowResult indep =
      run_method(net, Method::kV, standard_library(), biased);
  expect_identical(shared[4], indep);

  FlowEngine uniform(standard_library());
  const std::vector<FlowResult> base = uniform.run_circuit(net);
  EXPECT_NE(shared[4].power_uw, base[4].power_uw);
}

/// Structural check: balanced braces/brackets outside strings, and the
/// required schema keys are present.
void expect_valid_flow_json(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : s) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (c == '\\') escaped = true;
      if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') {
      --depth;
      ASSERT_GE(depth, 0);
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
  for (const char* key :
       {"\"schema\"", "minpower.flow.v1", "\"circuits\"", "\"methods\"",
        "\"phases\"", "\"decomp_ms\"", "\"activity_ms\"", "\"map_ms\"",
        "\"bdd_nodes\"", "\"curve_points\"", "\"decomp_passes\"",
        "\"engine\""}) {
    EXPECT_NE(s.find(key), std::string::npos) << key;
  }
}

TEST(FlowEngine, WritesValidJsonReport) {
  const Network net = prepared(69);
  FlowEngine engine(standard_library());
  const std::vector<FlowResult> rs = engine.run_circuit(net);
  std::ostringstream os;
  write_flow_json(os, {rs}, engine.counters(), 1, 12.5,
                  standard_library().name());
  expect_valid_flow_json(os.str());
  // All six methods appear.
  for (const char* m : {"\"I\"", "\"II\"", "\"III\"", "\"IV\"", "\"V\"",
                        "\"VI\""})
    EXPECT_NE(os.str().find(m), std::string::npos) << m;
}

}  // namespace
}  // namespace minpower
