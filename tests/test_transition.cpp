#include <gtest/gtest.h>

#include "decomp/huffman.hpp"
#include "decomp/network_decompose.hpp"
#include "decomp/transition_model.hpp"
#include "helpers.hpp"
#include "prob/probability.hpp"
#include "prob/transition.hpp"

namespace minpower {
namespace {

TEST(PiTemporalModel, IndependentMatchesEq3) {
  const auto m = PiTemporalModel::independent(0.3);
  EXPECT_DOUBLE_EQ(m.p01, 0.7 * 0.3);  // Eq. 3: w_{0->1} = w_0 · w_1
  EXPECT_DOUBLE_EQ(m.activity(), 2 * 0.3 * 0.7);
  EXPECT_TRUE(m.valid());
  EXPECT_NEAR(m.p00() + m.p01 + m.p10() + m.p11(), 1.0, 1e-12);
}

TEST(PiTemporalModel, WithActivity) {
  const auto m = PiTemporalModel::with_activity(0.5, 0.1);
  EXPECT_DOUBLE_EQ(m.p01, 0.05);
  EXPECT_DOUBLE_EQ(m.p11(), 0.45);
  EXPECT_DOUBLE_EQ(m.cond_next1(true), 0.9);
  EXPECT_DOUBLE_EQ(m.cond_next1(false), 0.1);
}

TEST(PiTemporalModel, ValidityBounds) {
  EXPECT_TRUE(PiTemporalModel::with_activity(0.3, 0.6).valid());  // p01=0.3
  PiTemporalModel bad;
  bad.p1 = 0.3;
  bad.p01 = 0.35;  // exceeds min(p1, 1-p1)
  EXPECT_FALSE(bad.valid());
}

/// Brute-force pair probability: enumerate all (x, x') vectors weighted by
/// the Markov pair distribution.
double brute_pair_probability(const BddManager& mgr, BddRef f,
                              const std::vector<PiTemporalModel>& model) {
  const int n = static_cast<int>(model.size());
  double total = 0.0;
  for (int mx = 0; mx < (1 << n); ++mx) {
    for (int my = 0; my < (1 << n); ++my) {
      double w = 1.0;
      std::vector<bool> assignment(2 * static_cast<std::size_t>(n));
      for (int k = 0; k < n; ++k) {
        const bool x = (mx >> k) & 1;
        const bool xp = (my >> k) & 1;
        const PiTemporalModel& m = model[static_cast<std::size_t>(k)];
        const double joint = x ? (xp ? m.p11() : m.p10())
                               : (xp ? m.p01 : m.p00());
        w *= joint;
        assignment[static_cast<std::size_t>(2 * k)] = x;
        assignment[static_cast<std::size_t>(2 * k + 1)] = xp;
      }
      if (w > 0.0 && mgr.eval(f, assignment)) total += w;
    }
  }
  return total;
}

TEST(PairProbability, SingleVariable) {
  BddManager mgr;
  const BddRef x = mgr.var(0);
  const BddRef xp = mgr.var(1);
  const auto m = PiTemporalModel::with_activity(0.4, 0.2);
  const std::vector<PiTemporalModel> model{m};
  EXPECT_NEAR(pair_probability(mgr, x, model), 0.4, 1e-12);
  EXPECT_NEAR(pair_probability(mgr, xp, model), 0.4, 1e-12);  // stationary
  // P(x=0 ∧ x'=1) = p01 = 0.1.
  EXPECT_NEAR(pair_probability(mgr, mgr.and_(mgr.not_(x), xp), model), 0.1,
              1e-12);
  // P(x=1 ∧ x'=1) = p11 = 0.3.
  EXPECT_NEAR(pair_probability(mgr, mgr.and_(x, xp), model), 0.3, 1e-12);
}

class PairProbabilityRandom : public ::testing::TestWithParam<int> {};

TEST_P(PairProbabilityRandom, MatchesBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 101 + 17);
  BddManager mgr;
  const int n = 4;
  std::vector<PiTemporalModel> model;
  for (int k = 0; k < n; ++k) {
    const double p = rng.uniform(0.1, 0.9);
    const double max_act = 2.0 * std::min(p, 1.0 - p);
    model.push_back(
        PiTemporalModel::with_activity(p, rng.uniform(0.0, max_act)));
  }
  // Random function over the 2n paired variables.
  std::vector<BddRef> pool;
  for (int v = 0; v < 2 * n; ++v) pool.push_back(mgr.var(v));
  for (int step = 0; step < 10; ++step) {
    const BddRef a = pool[rng.below(pool.size())];
    const BddRef b = pool[rng.below(pool.size())];
    switch (rng.below(3)) {
      case 0: pool.push_back(mgr.and_(a, b)); break;
      case 1: pool.push_back(mgr.or_(a, b)); break;
      default: pool.push_back(mgr.xor_(a, b)); break;
    }
  }
  const BddRef f = pool.back();
  EXPECT_NEAR(pair_probability(mgr, f, model),
              brute_pair_probability(mgr, f, model), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Random, PairProbabilityRandom,
                         ::testing::Range(0, 30));

TEST(TransitionProbabilities, TemporalIndependenceMatchesStaticModel) {
  // With p01 = p0·p1 at every PI, node activity must equal 2p(1−p) of the
  // exact signal probability — the Sec. 1.4 collapse.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Network net = testing::random_network(seed, 5, 10, 2);
    std::vector<PiTemporalModel> model;
    Rng rng(seed * 7);
    std::vector<double> pi_p;
    for (std::size_t i = 0; i < net.pis().size(); ++i) {
      pi_p.push_back(rng.uniform(0.1, 0.9));
      model.push_back(PiTemporalModel::independent(pi_p.back()));
    }
    const auto trans = transition_probabilities(net, model);
    const auto p = signal_probabilities(net, pi_p);
    for (NodeId id = 0; id < static_cast<NodeId>(net.capacity()); ++id) {
      if (net.node(id).is_dead()) continue;
      const double pe = p[static_cast<std::size_t>(id)];
      EXPECT_NEAR(trans[static_cast<std::size_t>(id)].p1, pe, 1e-9);
      EXPECT_NEAR(trans[static_cast<std::size_t>(id)].activity(),
                  2.0 * pe * (1.0 - pe), 1e-9)
          << net.node(id).name;
    }
  }
}

TEST(TransitionProbabilities, FrozenInputsNeverSwitch) {
  // Activity 0 at every PI → activity 0 everywhere.
  Network net = testing::random_network(9, 5, 10, 2);
  std::vector<PiTemporalModel> model;
  for (std::size_t i = 0; i < net.pis().size(); ++i)
    model.push_back(PiTemporalModel::with_activity(0.5, 0.0));
  const auto trans = transition_probabilities(net, model);
  for (NodeId id = 0; id < static_cast<NodeId>(net.capacity()); ++id) {
    if (net.node(id).is_dead()) continue;
    EXPECT_NEAR(trans[static_cast<std::size_t>(id)].activity(), 0.0, 1e-12);
  }
}

TEST(TransitionProbabilities, InverterPreservesActivity) {
  Network net("inv");
  const NodeId a = net.add_pi("a");
  const NodeId i = net.add_inv(a);
  net.add_po("f", i);
  const auto m = PiTemporalModel::with_activity(0.7, 0.25);
  const auto trans = transition_probabilities(net, {m});
  EXPECT_NEAR(trans[static_cast<std::size_t>(i)].activity(), 0.25, 1e-12);
  EXPECT_NEAR(trans[static_cast<std::size_t>(i)].p1, 0.3, 1e-12);
  // Transitions swap: output 0→1 when input 1→0.
  EXPECT_NEAR(trans[static_cast<std::size_t>(i)].p01, m.p10(), 1e-12);
}

// ---- transition-state decomposition (Eqs. 10/11 in full) ------------------

TEST(SignalTransition, Constructors) {
  const auto s = SignalTransition::independent(0.3);
  EXPECT_NEAR(s.p1(), 0.3, 1e-12);
  EXPECT_NEAR(s.activity(), 2 * 0.3 * 0.7, 1e-12);
  const auto c = s.complement();
  EXPECT_NEAR(c.p1(), 0.7, 1e-12);
  EXPECT_NEAR(c.activity(), s.activity(), 1e-12);
}

TEST(MergeTransitions, Eq10And11ForAnd) {
  const SignalTransition a{0.1, 0.2, 0.3, 0.4};
  const SignalTransition b{0.25, 0.25, 0.25, 0.25};
  const SignalTransition o = merge_transitions(a, b, GateType::kAnd);
  EXPECT_NEAR(o.w01, a.w01 * b.w01 + a.w11 * b.w01 + a.w01 * b.w11, 1e-12);
  EXPECT_NEAR(o.w10, a.w11 * b.w10 + a.w10 * b.w11 + a.w10 * b.w10, 1e-12);
  EXPECT_NEAR(o.w11, a.w11 * b.w11, 1e-12);
  EXPECT_NEAR(o.w00 + o.w01 + o.w10 + o.w11, 1.0, 1e-12);
}

TEST(MergeTransitions, MatchesJointEnumeration) {
  // Oracle: enumerate the 16 joint input-pair combinations.
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    auto rand_state = [&]() {
      double w[4];
      double sum = 0;
      for (double& x : w) {
        x = rng.uniform(0.01, 1.0);
        sum += x;
      }
      return SignalTransition{w[0] / sum, w[1] / sum, w[2] / sum, w[3] / sum};
    };
    const SignalTransition a = rand_state();
    const SignalTransition b = rand_state();
    for (const GateType g : {GateType::kAnd, GateType::kOr}) {
      double w[2][2] = {{0, 0}, {0, 0}};
      const double aw[2][2] = {{a.w00, a.w01}, {a.w10, a.w11}};
      const double bw[2][2] = {{b.w00, b.w01}, {b.w10, b.w11}};
      for (int at = 0; at < 2; ++at)
        for (int an = 0; an < 2; ++an)
          for (int bt = 0; bt < 2; ++bt)
            for (int bn = 0; bn < 2; ++bn) {
              const bool ot = g == GateType::kAnd ? (at && bt) : (at || bt);
              const bool on = g == GateType::kAnd ? (an && bn) : (an || bn);
              w[ot][on] += aw[at][an] * bw[bt][bn];
            }
      const SignalTransition o = merge_transitions(a, b, g);
      EXPECT_NEAR(o.w00, w[0][0], 1e-12);
      EXPECT_NEAR(o.w01, w[0][1], 1e-12);
      EXPECT_NEAR(o.w10, w[1][0], 1e-12);
      EXPECT_NEAR(o.w11, w[1][1], 1e-12);
    }
  }
}

TEST(TransitionDecomp, ReducesToStaticModelUnderTemporalIndependence) {
  // Under temporal independence the transition Modified Huffman and the
  // collapsed static Modified Huffman must agree on cost.
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = static_cast<int>(rng.range(3, 7));
    std::vector<double> p(static_cast<std::size_t>(n));
    std::vector<SignalTransition> states;
    for (double& x : p) {
      x = rng.uniform(0.05, 0.95);
      states.push_back(SignalTransition::independent(x));
    }
    const DecompModel model(GateType::kAnd, CircuitStyle::kStatic);
    const double c_static =
        modified_huffman_tree(p, model).internal_cost(model, p);
    const DecompTree t = modified_huffman_transitions(states, GateType::kAnd);
    const double c_trans =
        tree_transition_activity(t, states, GateType::kAnd);
    EXPECT_NEAR(c_static, c_trans, 1e-9);
  }
}

TEST(TransitionDecomp, NearOptimalAgainstExhaustive) {
  Rng rng(13);
  int optimal = 0;
  const int trials = 40;
  for (int trial = 0; trial < trials; ++trial) {
    const int n = 5;
    std::vector<SignalTransition> states;
    for (int i = 0; i < n; ++i) {
      const double p = rng.uniform(0.1, 0.9);
      const double act = rng.uniform(0.0, 2.0 * std::min(p, 1.0 - p));
      states.push_back(
          SignalTransition::from(PiTemporalModel::with_activity(p, act)));
    }
    const DecompTree h = modified_huffman_transitions(states, GateType::kAnd);
    const DecompTree o =
        best_tree_exhaustive_transitions(states, GateType::kAnd);
    const double ch = tree_transition_activity(h, states, GateType::kAnd);
    const double co = tree_transition_activity(o, states, GateType::kAnd);
    EXPECT_GE(ch, co - 1e-9);
    if (ch <= co + 1e-9) ++optimal;
  }
  EXPECT_GE(optimal * 100 / trials, 70);  // Table-1-like rate
}

TEST(TransitionDecomp, LowActivityInputsChangeTheTree) {
  // One input almost never switches but sits at p = 0.5; the collapsed
  // static model (activity 0.5) wants it merged late, while the transition
  // model knows merging it early freezes the whole subtree.
  std::vector<SignalTransition> states = {
      SignalTransition::from(PiTemporalModel::with_activity(0.5, 0.01)),
      SignalTransition::independent(0.5),
      SignalTransition::independent(0.5),
      SignalTransition::independent(0.5),
  };
  const DecompTree t = modified_huffman_transitions(states, GateType::kAnd);
  const double c_trans = tree_transition_activity(t, states, GateType::kAnd);

  // Static-collapsed tree built on marginals only:
  const DecompModel model(GateType::kAnd, CircuitStyle::kStatic);
  const std::vector<double> marginals{0.5, 0.5, 0.5, 0.5};
  const DecompTree ts = modified_huffman_tree(marginals, model);
  const double c_static_scored =
      tree_transition_activity(ts, states, GateType::kAnd);
  EXPECT_LE(c_trans, c_static_scored + 1e-9);
}

// ---- temporal-aware network decomposition ----------------------------------

TEST(TemporalNetworkDecomp, PreservesFunction) {
  for (std::uint64_t seed = 40; seed < 46; ++seed) {
    Network net = testing::random_network(seed, 6, 12, 3);
    Rng rng(seed + 2);
    NetworkDecompOptions o;
    for (std::size_t i = 0; i < net.pis().size(); ++i) {
      const double p = rng.uniform(0.2, 0.8);
      const double amax = 2.0 * std::min(p, 1.0 - p);
      o.temporal.push_back(
          PiTemporalModel::with_activity(p, rng.uniform(0.05, amax)));
    }
    const auto r = decompose_network(net, o);
    EXPECT_TRUE(networks_equivalent(net, r.network)) << seed;
    EXPECT_TRUE(r.network.is_nand_network());
  }
}

TEST(TemporalNetworkDecomp, IndependentModelMatchesDefaultActivity) {
  // With temporally independent PIs the temporal path must report the same
  // tree activity as the default static path (both reduce to 2p(1−p)).
  Network net = testing::random_network(47, 6, 12, 3);
  std::vector<double> pi_p;
  NetworkDecompOptions temporal;
  Rng rng(3);
  for (std::size_t i = 0; i < net.pis().size(); ++i) {
    pi_p.push_back(rng.uniform(0.2, 0.8));
    temporal.temporal.push_back(PiTemporalModel::independent(pi_p.back()));
  }
  NetworkDecompOptions plain;
  plain.pi_prob1 = pi_p;
  const auto rt = decompose_network(net, temporal);
  const auto rp = decompose_network(net, plain);
  EXPECT_NEAR(rt.tree_activity, rp.tree_activity, 1e-6);
}

TEST(TemporalNetworkDecomp, SlowInputsLowerTreeActivity) {
  // Halving every input's activity must not increase the decomposition
  // objective (activities propagate monotonically through Eq. 10/11).
  Network net = testing::random_network(48, 6, 14, 3);
  NetworkDecompOptions fast;
  NetworkDecompOptions slow;
  for (std::size_t i = 0; i < net.pis().size(); ++i) {
    fast.temporal.push_back(PiTemporalModel::with_activity(0.5, 0.5));
    slow.temporal.push_back(PiTemporalModel::with_activity(0.5, 0.1));
  }
  const auto rf = decompose_network(net, fast);
  const auto rs = decompose_network(net, slow);
  EXPECT_LT(rs.tree_activity, rf.tree_activity);
}

TEST(DecomposeNodeTransitions, RealizesFunction) {
  Rng rng(21);
  for (int trial = 0; trial < 15; ++trial) {
    const int k = static_cast<int>(rng.range(2, 6));
    Cover f;
    const int cubes = static_cast<int>(rng.range(1, 4));
    for (int cu = 0; cu < cubes; ++cu) {
      Cube c;
      for (int v = 0; v < k; ++v)
        if (rng.coin(0.6)) c = c & Cube::literal(v, rng.coin());
      if (c.is_one()) c = Cube::literal(0, true);
      f.add(c);
    }
    f.normalize();
    if (f.is_zero() || f.is_one()) continue;
    std::vector<SignalTransition> states;
    for (int v = 0; v < k; ++v)
      states.push_back(
          SignalTransition::independent(rng.uniform(0.1, 0.9)));
    const NodeDecomp plan = decompose_node_transitions(f, states);

    Network net("r");
    std::vector<NodeId> pis;
    for (int i = 0; i < k; ++i)
      pis.push_back(net.add_pi("x" + std::to_string(i)));
    const NodeId root = emit_node_decomp(net, pis, f, plan);
    net.add_po("f", root);
    for (std::uint64_t m = 0; m < (std::uint64_t{1} << k); ++m) {
      std::vector<bool> in(static_cast<std::size_t>(k));
      for (int i = 0; i < k; ++i)
        in[static_cast<std::size_t>(i)] = (m >> i) & 1;
      EXPECT_EQ(net.eval(in)[0], f.eval(m)) << f.to_string();
    }
  }
}

}  // namespace
}  // namespace minpower
