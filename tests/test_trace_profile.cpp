// Trace export → profile round trip (DESIGN.md §11): run the FlowEngine
// under the tracer, feed the exported Chrome trace back through
// analyze_chrome_trace, and check the span forest against the tracer's own
// event count and the nesting invariants the profiler guarantees; plus
// synthetic-trace forest checks and malformed-input rejection.

#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "flow/flow_engine.hpp"
#include "helpers.hpp"
#include "trace/analysis.hpp"
#include "trace/trace.hpp"

namespace minpower {
namespace {

Network prepared(std::uint64_t seed) {
  Network net = testing::random_network(seed, 7, 16, 3);
  prepare_network(net);
  return net;
}

TEST(TraceProfile, RoundTripRecoversEverySpan) {
  trace::clear();
  std::vector<Network> nets;
  for (std::uint64_t seed : {81u, 82u, 83u}) nets.push_back(prepared(seed));
  std::vector<const Network*> circuits;
  for (const Network& n : nets) circuits.push_back(&n);

  EngineOptions eo;
  eo.num_threads = 8;
  FlowEngine engine(standard_library(), eo);
  trace::set_enabled(true);
  const auto results = engine.run_suite(circuits);
  trace::set_enabled(false);
  ASSERT_EQ(results.size(), circuits.size());

  std::ostringstream os;
  trace::write_chrome_trace(os);
  const std::size_t recorded = trace::num_events();
  ASSERT_GT(recorded, 0u);

  trace::TraceProfile p;
  std::string error;
  ASSERT_TRUE(trace::analyze_chrome_trace(os.str(), &p, &error)) << error;

  // Every recorded span must be recovered, none invented.
  EXPECT_EQ(p.num_events, recorded);
  EXPECT_EQ(p.spans.size(), recorded);

  // Forest invariants: parents contain children, self times partition the
  // inclusive duration (non-negative by construction — checked via the
  // child-duration sum), depth is consistent.
  std::vector<std::uint64_t> child_sum(p.spans.size(), 0);
  for (std::size_t i = 0; i < p.spans.size(); ++i) {
    const trace::SpanRecord& s = p.spans[i];
    EXPECT_LE(s.self_us, s.dur_us);
    if (s.parent >= 0) {
      const trace::SpanRecord& par = p.spans[static_cast<std::size_t>(s.parent)];
      EXPECT_EQ(par.tid, s.tid);
      EXPECT_EQ(s.depth, par.depth + 1);
      EXPECT_GE(s.ts_us, par.ts_us);
      EXPECT_LE(s.ts_us + s.dur_us, par.ts_us + par.dur_us);
      child_sum[static_cast<std::size_t>(s.parent)] += s.dur_us;
    } else {
      EXPECT_EQ(s.depth, 0);
    }
  }
  for (std::size_t i = 0; i < p.spans.size(); ++i) {
    EXPECT_LE(child_sum[i], p.spans[i].dur_us) << p.spans[i].name;
    EXPECT_EQ(p.spans[i].self_us, p.spans[i].dur_us - child_sum[i])
        << p.spans[i].name;
  }

  // Per-thread accounting: the self-time sum equals top-level busy time and
  // never exceeds the thread's own wall-clock extent.
  std::map<int, std::uint64_t> self_by_tid;
  for (const trace::SpanRecord& s : p.spans) self_by_tid[s.tid] += s.self_us;
  ASSERT_EQ(p.threads.size(), self_by_tid.size());
  for (const trace::ThreadTotals& t : p.threads) {
    EXPECT_EQ(t.self_us, self_by_tid[t.tid]);
    EXPECT_EQ(t.self_us, t.busy_us);
    EXPECT_LE(t.self_us, t.wall_us());
    EXPECT_LE(t.wall_us(), p.wall_us);
  }

  // Phase totals cover every span exactly once.
  std::uint64_t phase_count = 0, phase_self = 0, total_self = 0;
  for (const trace::PhaseTotals& ph : p.phases) {
    phase_count += ph.count;
    phase_self += ph.self_us;
    EXPECT_LE(ph.min_us, ph.max_us) << ph.name;
    EXPECT_LE(ph.self_us, ph.total_us) << ph.name;
  }
  for (const trace::SpanRecord& s : p.spans) total_self += s.self_us;
  EXPECT_EQ(phase_count, p.spans.size());
  EXPECT_EQ(phase_self, total_self);

  // The engine emitted both fan-out stages, so queue waits and the critical
  // path must be populated; the barrier schedule can never beat the pure
  // dependency bound.
  EXPECT_EQ(p.stage1_wait.count, circuits.size() * 3);
  EXPECT_EQ(p.stage2_wait.count, circuits.size() * 6);
  ASSERT_TRUE(p.critical.available);
  EXPECT_GE(p.critical.barrier_us, p.critical.dependency_us);
  ASSERT_EQ(p.critical.barrier_chain.size(), 2u);
  EXPECT_EQ(p.critical.barrier_chain[0].stage, "stage1");
  EXPECT_EQ(p.critical.barrier_chain[1].stage, "stage2");
  ASSERT_EQ(p.critical.dependency_chain.size(), 2u);

  // Both renderers accept the profile.
  std::ostringstream text, json;
  trace::print_profile(text, p, 10);
  trace::write_profile_json(json, p, "roundtrip.trace.json", 10);
  EXPECT_NE(text.str().find("critical path"), std::string::npos);
  EXPECT_NE(json.str().find("minpower.profile.v1"), std::string::npos);
}

TEST(TraceProfile, SyntheticForestSelfTimes) {
  // tid 1: root [0,100] with children [10,40) and [50,90), grandchild
  // [55,60); tid 2: a lone span. Metadata events must be ignored.
  const char* json = R"({
    "traceEvents": [
      {"ph": "M", "name": "process_name", "pid": 1, "tid": 1,
       "args": {"name": "minpower"}},
      {"ph": "X", "name": "root", "cat": "t", "pid": 1, "tid": 1,
       "ts": 0, "dur": 100},
      {"ph": "X", "name": "childA", "cat": "t", "pid": 1, "tid": 1,
       "ts": 10, "dur": 30},
      {"ph": "X", "name": "childB", "cat": "t", "pid": 1, "tid": 1,
       "ts": 50, "dur": 40, "args": {"k": "v", "n": 7}},
      {"ph": "X", "name": "grand", "cat": "t", "pid": 1, "tid": 1,
       "ts": 55, "dur": 5},
      {"ph": "X", "name": "other", "cat": "t", "pid": 1, "tid": 2,
       "ts": 20, "dur": 15}
    ]
  })";
  trace::TraceProfile p;
  std::string error;
  ASSERT_TRUE(trace::analyze_chrome_trace(json, &p, &error)) << error;
  ASSERT_EQ(p.spans.size(), 5u);
  EXPECT_EQ(p.wall_us, 100u);

  std::map<std::string, const trace::SpanRecord*> by_name;
  for (const trace::SpanRecord& s : p.spans) by_name[s.name] = &s;
  EXPECT_EQ(by_name["root"]->self_us, 30u);    // 100 − 30 − 40
  EXPECT_EQ(by_name["root"]->parent, -1);
  EXPECT_EQ(by_name["childA"]->self_us, 30u);
  EXPECT_EQ(by_name["childB"]->self_us, 35u);  // 40 − 5
  EXPECT_EQ(by_name["grand"]->depth, 2);
  EXPECT_EQ(p.spans[static_cast<std::size_t>(by_name["grand"]->parent)].name,
            "childB");
  EXPECT_EQ(by_name["other"]->parent, -1);

  ASSERT_NE(by_name["childB"]->find_str("k"), nullptr);
  EXPECT_EQ(*by_name["childB"]->find_str("k"), "v");
  ASSERT_NE(by_name["childB"]->find_num("n"), nullptr);
  EXPECT_EQ(*by_name["childB"]->find_num("n"), 7.0);

  ASSERT_EQ(p.threads.size(), 2u);
  EXPECT_EQ(p.threads[0].tid, 1);
  EXPECT_EQ(p.threads[0].busy_us, 100u);
  EXPECT_EQ(p.threads[1].tid, 2);
  EXPECT_EQ(p.threads[1].busy_us, 15u);

  // No engine stage spans → no critical path, but still a valid profile.
  EXPECT_FALSE(p.critical.available);
}

TEST(TraceProfile, EmptyTraceIsValid) {
  trace::TraceProfile p;
  std::string error;
  ASSERT_TRUE(
      trace::analyze_chrome_trace(R"({"traceEvents": []})", &p, &error))
      << error;
  EXPECT_EQ(p.num_events, 0u);
  EXPECT_EQ(p.wall_us, 0u);
  EXPECT_TRUE(p.spans.empty());
  EXPECT_FALSE(p.critical.available);
}

TEST(TraceProfile, RejectsMalformedTraces) {
  trace::TraceProfile p;
  std::string error;
  EXPECT_FALSE(trace::analyze_chrome_trace("{", &p, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(trace::analyze_chrome_trace("{}", &p, &error));
  EXPECT_FALSE(trace::analyze_chrome_trace(R"({"traceEvents": 5})", &p,
                                           &error));
  // An X event missing required fields is an error, not silently dropped.
  EXPECT_FALSE(trace::analyze_chrome_trace(
      R"({"traceEvents": [{"ph": "X", "name": "a"}]})", &p, &error));
  EXPECT_FALSE(trace::analyze_chrome_trace(
      R"({"traceEvents": [{"ph": "X", "ts": 0, "dur": 1, "tid": 1}]})", &p,
      &error));
}

}  // namespace
}  // namespace minpower
