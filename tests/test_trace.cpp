// Observability subsystem (DESIGN.md §10): the metrics registry contract
// (deterministic, thread-count-independent counters; stable handles across
// reset) and the span tracer contract (zero events when disabled; exported
// Chrome trace JSON parses, carries the required keys, and spans nest
// properly per thread).

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "flow/flow_engine.hpp"
#include "helpers.hpp"
#include "library/library.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"
#include "util/budget.hpp"
#include "util/json_reader.hpp"
#include "util/json_writer.hpp"

namespace minpower {
namespace {

std::string snapshot_json() {
  std::ostringstream os;
  JsonWriter w(os);
  metrics::write_metrics_json(w, metrics::Registry::global().snapshot());
  return os.str();
}

std::vector<Network> test_circuits() {
  std::vector<Network> circuits;
  for (const std::uint64_t seed : {11u, 22u}) {
    Network net = testing::random_network(seed, /*num_pi=*/6,
                                          /*num_nodes=*/14, /*num_po=*/3);
    prepare_network(net);
    circuits.push_back(std::move(net));
  }
  return circuits;
}

void run_flow_suite(const std::vector<Network>& circuits,
                    unsigned num_threads) {
  EngineOptions eo;
  eo.num_threads = num_threads;
  eo.flow.num_threads = num_threads;
  FlowEngine engine(standard_library(), eo);
  std::vector<const Network*> ptrs;
  for (const Network& c : circuits) ptrs.push_back(&c);
  engine.run_suite(ptrs);
}

TEST(Metrics, CountersGaugesHistogramsAndReset) {
  metrics::Registry::global().reset();
  metrics::Counter& c = metrics::counter("test.counter");
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);
  // Same name → same handle.
  EXPECT_EQ(&metrics::counter("test.counter"), &c);

  metrics::Gauge& g = metrics::gauge("test.gauge");
  g.record_max(7);
  g.record_max(3);
  EXPECT_EQ(g.value(), 7u);

  metrics::Histogram& h = metrics::histogram("test.hist");
  h.record(0);
  h.record(1);
  h.record(5);
  h.record(1024);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 1030u);
  EXPECT_EQ(h.bucket(metrics::Histogram::bucket_of(0)), 1u);
  EXPECT_EQ(h.bucket(metrics::Histogram::bucket_of(5)), 1u);

  // Reset zeroes values but keeps the registered handles valid.
  metrics::Registry::global().reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  c.add(2);
  EXPECT_EQ(metrics::counter("test.counter").value(), 2u);
}

TEST(Metrics, HistogramLogBucketEdges) {
  using H = metrics::Histogram;
  EXPECT_EQ(H::bucket_of(0), 0);
  EXPECT_EQ(H::bucket_of(1), 1);
  EXPECT_EQ(H::bucket_of(2), 2);
  EXPECT_EQ(H::bucket_of(3), 2);
  EXPECT_EQ(H::bucket_of(4), 3);
  EXPECT_EQ(H::bucket_of(1023), 10);
  EXPECT_EQ(H::bucket_of(1024), 11);
  EXPECT_EQ(H::bucket_lo(0), 0u);
  EXPECT_EQ(H::bucket_lo(1), 1u);
  EXPECT_EQ(H::bucket_lo(11), 1024u);
  // Bucket lower bound is always <= the smallest value mapping to it.
  for (const std::uint64_t v : {1u, 2u, 3u, 7u, 8u, 100u, 65535u, 65536u})
    EXPECT_LE(H::bucket_lo(H::bucket_of(v)), v) << v;
}

TEST(Metrics, SnapshotIsSortedAndSerializes) {
  metrics::Registry::global().reset();
  metrics::counter("z.last").add(1);
  metrics::counter("a.first").add(2);
  const metrics::Snapshot s = metrics::Registry::global().snapshot();
  for (std::size_t i = 1; i < s.counters.size(); ++i)
    EXPECT_LT(s.counters[i - 1].first, s.counters[i].first);

  std::string error;
  const auto parsed = parse_json(snapshot_json(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_NE(parsed->find("counters"), nullptr);
  ASSERT_NE(parsed->find("gauges"), nullptr);
  ASSERT_NE(parsed->find("histograms"), nullptr);
}

TEST(Metrics, BudgetCheckpointCountsPerSite) {
  metrics::Registry::global().reset();
  // No budget installed: the checkpoint is a no-op for governance but still
  // counts per site (alternating sites exercises the thread-local cache).
  budget_checkpoint("decomp");
  budget_checkpoint("map");
  budget_checkpoint("decomp");
  budget_checkpoint("decomp");
  budget_checkpoint("map");
  EXPECT_EQ(metrics::counter("budget.checkpoint.decomp").value(), 3u);
  EXPECT_EQ(metrics::counter("budget.checkpoint.map").value(), 2u);
}

TEST(Metrics, FlowCountersAreThreadCountInvariant) {
  // The acceptance criterion, asserted at the registry level: the full
  // metrics snapshot after a suite run is byte-identical at 1 and 8
  // threads.
  const std::vector<Network> circuits = test_circuits();

  metrics::Registry::global().reset();
  run_flow_suite(circuits, 1);
  const std::string serial = snapshot_json();

  metrics::Registry::global().reset();
  run_flow_suite(circuits, 8);
  const std::string parallel = snapshot_json();

  EXPECT_EQ(serial, parallel)
      << "metrics counters differ between --threads 1 and --threads 8";
  EXPECT_NE(serial.find("bdd.unique_lookups"), std::string::npos);
  EXPECT_NE(serial.find("huffman.merges"), std::string::npos);
  EXPECT_NE(serial.find("map.match_attempts"), std::string::npos);
  EXPECT_NE(serial.find("engine.tasks_ok"), std::string::npos);
}

TEST(Trace, DisabledProducesNoEvents) {
  trace::set_enabled(false);
  trace::clear();
  {
    trace::Span s("should-not-record", "test");
    s.arg("k", 1);
  }
  run_flow_suite(test_circuits(), 2);
  EXPECT_EQ(trace::num_events(), 0u);

  std::ostringstream os;
  trace::write_chrome_trace(os);
  std::string error;
  const auto parsed = parse_json(os.str(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const JsonValue* events = parsed->find("traceEvents");
  ASSERT_NE(events, nullptr);
  for (const JsonValue& e : events->items)
    EXPECT_NE(e.find("ph")->string, "X") << "span event recorded while off";
}

TEST(Trace, FlowTraceParsesAndSpansNest) {
  trace::set_enabled(false);
  trace::clear();
  trace::set_enabled(true);
  run_flow_suite(test_circuits(), 4);
  trace::set_enabled(false);

  ASSERT_GT(trace::num_events(), 0u);
  std::ostringstream os;
  trace::write_chrome_trace(os);

  std::string error;
  const auto parsed = parse_json(os.str(), &error);
  ASSERT_TRUE(parsed.has_value()) << "trace JSON invalid: " << error;
  const JsonValue* events = parsed->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JsonValue::Kind::kArray);
  ASSERT_FALSE(events->items.empty());

  struct Interval {
    double ts;
    double end;
    std::string name;
  };
  std::map<double, std::vector<Interval>> by_tid;
  std::set<std::string> names;
  for (const JsonValue& e : events->items) {
    for (const char* key : {"name", "ph", "pid", "tid"})
      ASSERT_NE(e.find(key), nullptr) << key;
    const std::string& ph = e.find("ph")->string;
    ASSERT_TRUE(ph == "X" || ph == "M") << ph;
    if (ph == "M") continue;
    for (const char* key : {"cat", "ts", "dur", "args"})
      ASSERT_NE(e.find(key), nullptr) << key;
    const double ts = e.find("ts")->number;
    const double dur = e.find("dur")->number;
    EXPECT_GE(ts, 0.0);
    EXPECT_GE(dur, 0.0);
    names.insert(e.find("name")->string);
    by_tid[e.find("tid")->number].push_back(
        Interval{ts, ts + dur, e.find("name")->string});
  }
  // The whole instrumented pipeline shows up.
  for (const char* expected :
       {"stage1", "stage2", "decomp", "activity", "map", "eval"})
    EXPECT_TRUE(names.count(expected)) << "missing span: " << expected;

  // Per thread, spans nest: any two intervals are disjoint or one contains
  // the other — a partial overlap would mean an end-before-begin or a
  // cross-thread buffer mixup.
  for (const auto& [tid, spans] : by_tid) {
    for (std::size_t i = 0; i < spans.size(); ++i)
      for (std::size_t j = i + 1; j < spans.size(); ++j) {
        const Interval& a = spans[i];
        const Interval& b = spans[j];
        const bool partial_overlap =
            (b.ts > a.ts && b.ts < a.end && b.end > a.end) ||
            (a.ts > b.ts && a.ts < b.end && a.end > b.end);
        EXPECT_FALSE(partial_overlap)
            << "tid " << tid << ": " << a.name << " [" << a.ts << ","
            << a.end << ") partially overlaps " << b.name << " [" << b.ts
            << "," << b.end << ")";
      }
  }
  trace::clear();
}

TEST(Trace, SpanArgsAreTyped) {
  trace::set_enabled(false);
  trace::clear();
  trace::set_enabled(true);
  {
    trace::Span s("typed", "test");
    s.arg("str", "hello");
    s.arg("num", 2.5);
    s.arg("int", -3);
    s.arg("uint", 7u);
  }
  trace::set_enabled(false);
  std::ostringstream os;
  trace::write_chrome_trace(os);
  std::string error;
  const auto parsed = parse_json(os.str(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const JsonValue* args = nullptr;
  for (const JsonValue& e : parsed->find("traceEvents")->items)
    if (e.find("name")->string == "typed") args = e.find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_EQ(args->find("str")->string, "hello");
  EXPECT_EQ(args->find("num")->number, 2.5);
  EXPECT_EQ(args->find("int")->number, -3.0);
  EXPECT_EQ(args->find("uint")->number, 7.0);
  trace::clear();
}

}  // namespace
}  // namespace minpower
