#include <gtest/gtest.h>

#include "sop/algebra.hpp"
#include "util/rng.hpp"

namespace minpower {
namespace {

Cube lit(int v, bool pos = true) { return Cube::literal(v, pos); }

TEST(Algebra, CommonCube) {
  // f = a·b·c + a·b·d → common cube a·b
  Cover f{{lit(0) & lit(1) & lit(2), lit(0) & lit(1) & lit(3)}};
  EXPECT_EQ(common_cube(f), lit(0) & lit(1));
  EXPECT_FALSE(is_cube_free(f));
}

TEST(Algebra, CommonCubeOfCubeFree) {
  Cover f{{lit(0) & lit(1), lit(2)}};
  EXPECT_TRUE(common_cube(f).is_one());
  EXPECT_TRUE(is_cube_free(f));
}

TEST(Algebra, DivideByCube) {
  // f = a·b·c + a·d + e; f / a = b·c + d
  Cover f{{lit(0) & lit(1) & lit(2), lit(0) & lit(3), lit(4)}};
  const Cover q = divide_by_cube(f, lit(0));
  Cover want{{lit(1) & lit(2), lit(3)}};
  EXPECT_EQ(q.cubes(), want.cubes());
}

TEST(Algebra, WeakDivisionTextbook) {
  // Classic: f = a·c + a·d + b·c + b·d + e; d = a + b → q = c + d, r = e.
  Cover f{{lit(0) & lit(2), lit(0) & lit(3), lit(1) & lit(2), lit(1) & lit(3),
           lit(4)}};
  Cover d{{lit(0), lit(1)}};
  const DivisionResult r = algebraic_divide(f, d);
  Cover want_q{{lit(2), lit(3)}};
  Cover want_r{{lit(4)}};
  EXPECT_EQ(r.quotient.cubes(), want_q.cubes());
  EXPECT_EQ(r.remainder.cubes(), want_r.cubes());
}

TEST(Algebra, DivisionByNonDivisor) {
  Cover f{{lit(0) & lit(1)}};
  Cover d{{lit(2)}};
  const DivisionResult r = algebraic_divide(f, d);
  EXPECT_TRUE(r.quotient.empty());
  EXPECT_EQ(r.remainder.cubes(), f.cubes());
}

TEST(Algebra, KernelsOfTextbookFunction) {
  // f = a·d + b·d + c·d  (common cube d) → kernel {a+b+c}, co-kernel d.
  Cover f{{lit(0) & lit(3), lit(1) & lit(3), lit(2) & lit(3)}};
  const auto ks = kernels(f);
  ASSERT_FALSE(ks.empty());
  Cover want{{lit(0), lit(1), lit(2)}};
  bool found = false;
  for (const Kernel& k : ks)
    if (k.kernel.cubes() == want.cubes()) found = true;
  EXPECT_TRUE(found);
}

TEST(Algebra, KernelsAreCubeFree) {
  Cover f{{lit(0) & lit(2), lit(0) & lit(3), lit(1) & lit(2), lit(1) & lit(3),
           lit(4)}};
  for (const Kernel& k : kernels(f)) {
    EXPECT_TRUE(is_cube_free(k.kernel)) << k.kernel.to_string();
    EXPECT_GE(k.kernel.num_cubes(), 2u);
  }
}

TEST(Algebra, SingleCubeHasNoKernels) {
  Cover f{{lit(0) & lit(1) & lit(2)}};
  EXPECT_TRUE(kernels(f).empty());
}

// Property: f ≡ quotient·divisor + remainder for random cube divisors.
class DivisionProperty : public ::testing::TestWithParam<int> {};

TEST_P(DivisionProperty, ReconstructionHolds) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 5);
  const int vars = 6;
  Cover f;
  const int cubes = static_cast<int>(rng.range(2, 6));
  for (int c = 0; c < cubes; ++c) {
    Cube cube;
    for (int v = 0; v < vars; ++v) {
      const auto r = rng.below(3);
      if (r == 0) cube = cube & Cube::literal(v, true);
      if (r == 1) cube = cube & Cube::literal(v, false);
    }
    if (cube.is_one()) cube = Cube::literal(0, true);
    f.add(cube);
  }
  f.normalize();
  if (f.is_zero() || f.is_one()) GTEST_SKIP();

  // Random divisor: one or two random cubes drawn from f's kernels or lits.
  Cover d;
  const auto ks = kernels(f);
  if (!ks.empty() && rng.coin()) {
    d = ks[rng.below(ks.size())].kernel;
  } else {
    const int v = static_cast<int>(rng.below(vars));
    d = Cover::literal(v, rng.coin());
  }
  const DivisionResult r = algebraic_divide(f, d);
  const Cover rebuilt =
      Cover::disjunction(Cover::conjunction(r.quotient, d), r.remainder);
  // Weak division guarantees algebraic containment; Boolean equivalence of
  // q·d + r with f must hold as well.
  EXPECT_TRUE(Cover::equivalent(rebuilt, f))
      << "f=" << f.to_string() << " d=" << d.to_string();
}

INSTANTIATE_TEST_SUITE_P(Random, DivisionProperty, ::testing::Range(0, 60));

}  // namespace
}  // namespace minpower
