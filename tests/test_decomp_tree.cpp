#include <gtest/gtest.h>

#include <cmath>

#include "decomp/huffman.hpp"
#include "util/rng.hpp"

namespace minpower {
namespace {

double cost(const DecompTree& t, const DecompModel& m,
            const std::vector<double>& p) {
  return t.internal_cost(m, p);
}

TEST(DecompModel, MergeProb) {
  const DecompModel and_p(GateType::kAnd, CircuitStyle::kDynamicP);
  const DecompModel or_p(GateType::kOr, CircuitStyle::kDynamicP);
  EXPECT_DOUBLE_EQ(and_p.merge_prob(0.3, 0.4), 0.12);
  EXPECT_DOUBLE_EQ(or_p.merge_prob(0.3, 0.4), 1.0 - 0.7 * 0.6);
}

TEST(DecompModel, MergeCostByStyle) {
  const DecompModel and_p(GateType::kAnd, CircuitStyle::kDynamicP);
  const DecompModel and_n(GateType::kAnd, CircuitStyle::kDynamicN);
  const DecompModel and_s(GateType::kAnd, CircuitStyle::kStatic);
  EXPECT_DOUBLE_EQ(and_p.merge_cost(0.3, 0.4), 0.12);
  EXPECT_DOUBLE_EQ(and_n.merge_cost(0.3, 0.4), 0.88);
  EXPECT_DOUBLE_EQ(and_s.merge_cost(0.3, 0.4), 2 * 0.12 * 0.88);
  EXPECT_TRUE(and_p.huffman_optimal());
  EXPECT_FALSE(and_s.huffman_optimal());
}

TEST(Huffman, Figure1Example) {
  // The paper's Figure 1: P(a)=0.3 P(b)=0.4 P(c)=0.7 P(d)=0.5, p-type
  // domino AND decomposition. Configuration A sums to 0.246 internal
  // activity; configuration B to 0.512−… — the figure reports totals with
  // leaves included: 2.146 vs 2.412 (leaves contribute 1.9).
  const std::vector<double> p{0.3, 0.4, 0.7, 0.5};
  const DecompModel model(GateType::kAnd, CircuitStyle::kDynamicP);

  // Configuration A: ((a·b)·c)·d — internal sum 0.12+0.084+0.042 = 0.246.
  DecompTree a;
  a.num_leaves = 4;
  for (int i = 0; i < 4; ++i) {
    DecompTree::TNode leaf;
    leaf.leaf = i;
    a.nodes.push_back(leaf);
  }
  auto add = [&](int l, int r) {
    DecompTree::TNode n;
    n.left = l;
    n.right = r;
    a.nodes.push_back(n);
    return static_cast<int>(a.nodes.size()) - 1;
  };
  a.root = add(add(add(0, 1), 2), 3);
  EXPECT_NEAR(cost(a, model, p) + 1.9, 2.146, 1e-9);

  // Configuration B: (a·b)·(c·d) — internal 0.12+0.35+0.042 = 0.512.
  DecompTree b;
  b.num_leaves = 4;
  for (int i = 0; i < 4; ++i) {
    DecompTree::TNode leaf;
    leaf.leaf = i;
    b.nodes.push_back(leaf);
  }
  auto addb = [&](int l, int r) {
    DecompTree::TNode n;
    n.left = l;
    n.right = r;
    b.nodes.push_back(n);
    return static_cast<int>(b.nodes.size()) - 1;
  };
  b.root = addb(addb(0, 1), addb(2, 3));
  EXPECT_NEAR(cost(b, model, p) + 1.9, 2.412, 1e-9);

  // Huffman finds a tree at least as good as A.
  const DecompTree h = huffman_tree(p, model);
  EXPECT_LE(cost(h, model, p), cost(a, model, p) + 1e-12);
}

TEST(Huffman, SingleAndTwoLeaves) {
  const DecompModel model(GateType::kAnd, CircuitStyle::kDynamicP);
  const DecompTree one = huffman_tree({0.4}, model);
  EXPECT_EQ(one.height(), 0);
  EXPECT_EQ(cost(one, model, {0.4}), 0.0);
  const DecompTree two = huffman_tree({0.4, 0.6}, model);
  EXPECT_EQ(two.height(), 1);
  EXPECT_NEAR(cost(two, model, {0.4, 0.6}), 0.24, 1e-12);
}

TEST(ModifiedHuffman, MatchesHuffmanOnQuasiLinear) {
  Rng rng(2024);
  const DecompModel model(GateType::kAnd, CircuitStyle::kDynamicP);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> p(6);
    for (double& x : p) x = rng.uniform(0.05, 0.95);
    const double ch = cost(huffman_tree(p, model), model, p);
    const double cm = cost(modified_huffman_tree(p, model), model, p);
    EXPECT_NEAR(ch, cm, 1e-9);
  }
}

// Theorem 2.2: Huffman is optimal for dynamic styles — verified against
// exhaustive enumeration over random instances and both gate types/styles.
struct DynCase {
  GateType gate;
  CircuitStyle style;
  int n;
};

class HuffmanOptimality : public ::testing::TestWithParam<DynCase> {};

TEST_P(HuffmanOptimality, MatchesExhaustiveOptimum) {
  const DynCase c = GetParam();
  const DecompModel model(c.gate, c.style);
  Rng rng(static_cast<std::uint64_t>(c.n) * 1000 +
          static_cast<std::uint64_t>(c.gate) * 10 +
          static_cast<std::uint64_t>(c.style));
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<double> p(static_cast<std::size_t>(c.n));
    for (double& x : p) x = rng.uniform(0.05, 0.95);
    const double ch = cost(huffman_tree(p, model), model, p);
    const double co = cost(best_tree_exhaustive(p, model), model, p);
    EXPECT_LE(ch, co + 1e-9) << "gate=" << static_cast<int>(c.gate)
                             << " style=" << static_cast<int>(c.style)
                             << " n=" << c.n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    DynamicStyles, HuffmanOptimality,
    ::testing::Values(DynCase{GateType::kAnd, CircuitStyle::kDynamicP, 4},
                      DynCase{GateType::kAnd, CircuitStyle::kDynamicP, 6},
                      DynCase{GateType::kAnd, CircuitStyle::kDynamicN, 5},
                      DynCase{GateType::kOr, CircuitStyle::kDynamicP, 5},
                      DynCase{GateType::kOr, CircuitStyle::kDynamicN, 6}));

// Table 1's experiment in miniature: Modified Huffman vs exhaustive optimum
// for the static model; it should be optimal in a large fraction of trials
// and never worse than the exhaustive optimum by construction of the test.
class ModifiedHuffmanRate : public ::testing::TestWithParam<int> {};

TEST_P(ModifiedHuffmanRate, NearOptimalForStatic) {
  const int n = GetParam();
  const DecompModel model(GateType::kAnd, CircuitStyle::kStatic);
  Rng rng(static_cast<std::uint64_t>(n) * 31337);
  int optimal = 0;
  const int trials = 60;
  for (int trial = 0; trial < trials; ++trial) {
    std::vector<double> p(static_cast<std::size_t>(n));
    for (double& x : p) x = rng.uniform(0.0, 1.0);
    const double cm = cost(modified_huffman_tree(p, model), model, p);
    const double co = cost(best_tree_exhaustive(p, model), model, p);
    EXPECT_GE(cm, co - 1e-9);
    if (cm <= co + 1e-9) ++optimal;
  }
  // The paper's Table 1 reports 88–100% for n = 3..6; allow slack.
  EXPECT_GE(optimal * 100 / trials, 70) << "n = " << n;
}

INSTANTIATE_TEST_SUITE_P(TableOneSizes, ModifiedHuffmanRate,
                         ::testing::Values(3, 4, 5, 6));

TEST(Exhaustive, ExactlyEnumeratesSmallCases) {
  // For n=3 there are 3 distinct trees; brute check one known optimum.
  const DecompModel model(GateType::kAnd, CircuitStyle::kDynamicP);
  const std::vector<double> p{0.9, 0.1, 0.5};
  const DecompTree t = best_tree_exhaustive(p, model);
  // Optimal merges the two smallest first: (0.1,0.5) → 0.05, then 0.045.
  EXPECT_NEAR(cost(t, model, p), 0.05 + 0.045, 1e-12);
}

TEST(LeafDepths, ConsistentWithHeight) {
  const DecompModel model(GateType::kAnd, CircuitStyle::kDynamicP);
  Rng rng(99);
  std::vector<double> p(7);
  for (double& x : p) x = rng.uniform(0.1, 0.9);
  const DecompTree t = huffman_tree(p, model);
  const auto depths = t.leaf_depths();
  int maxd = 0;
  for (int d : depths) maxd = std::max(maxd, d);
  EXPECT_EQ(maxd, t.height());
  // Kraft equality for a full binary tree.
  double kraft = 0.0;
  for (int d : depths) kraft += std::pow(2.0, -d);
  EXPECT_NEAR(kraft, 1.0, 1e-12);
}

TEST(CorrelatedHuffman, IndependentJointsReduceToModified) {
  const DecompModel model(GateType::kAnd, CircuitStyle::kDynamicP);
  Rng rng(7);
  std::vector<double> p(5);
  for (double& x : p) x = rng.uniform(0.1, 0.9);
  const auto joints = JointProbabilities::independent(p);
  const DecompTree tc = modified_huffman_correlated(joints, model);
  const DecompTree tm = modified_huffman_tree(p, model);
  EXPECT_NEAR(cost(tc, model, p), cost(tm, model, p), 1e-9);
}

TEST(CorrelatedHuffman, ExploitsStrongCorrelation) {
  // Signals 0 and 1 are strongly anti-correlated: P(0∧1) = 0.05 even though
  // each is 0.5 alone. A p-type domino AND of the pair almost never fires,
  // so the correlation-aware algorithm must merge (0,1) first; an
  // independence-assuming model would see every pair as 0.25 and have no
  // reason to prefer it.
  const DecompModel model(GateType::kAnd, CircuitStyle::kDynamicP);
  std::vector<double> p{0.5, 0.5, 0.5};
  JointProbabilities j(p);
  j.set(0, 1, 0.05);  // anti-correlated
  j.set(0, 2, 0.25);  // independent
  j.set(1, 2, 0.25);
  const DecompTree t = modified_huffman_correlated(j, model);
  // The first internal node created must be the (0,1) merge with its exact
  // joint probability.
  const DecompTree::TNode& first_internal =
      t.nodes[static_cast<std::size_t>(t.num_leaves)];
  ASSERT_FALSE(first_internal.is_leaf());
  EXPECT_NEAR(first_internal.prob, 0.05, 1e-12);
  const bool leaves01 =
      (first_internal.left == 0 && first_internal.right == 1) ||
      (first_internal.left == 1 && first_internal.right == 0);
  EXPECT_TRUE(leaves01);
}

TEST(Huffman, DynamicNMergesLargestProbabilities) {
  // n-type domino: activity = 1−p; the cheapest merge pairs the two LARGEST
  // 1-probabilities (their AND has the smallest 0-probability... verify by
  // direct cost comparison against exhaustive).
  const DecompModel model(GateType::kAnd, CircuitStyle::kDynamicN);
  const std::vector<double> p{0.1, 0.2, 0.85, 0.9};
  const DecompTree h = huffman_tree(p, model);
  const DecompTree o = best_tree_exhaustive(p, model);
  EXPECT_NEAR(h.internal_cost(model, p), o.internal_cost(model, p), 1e-12);
  // The first merge must combine leaves 2 and 3 (p = 0.85, 0.9).
  const DecompTree::TNode& first =
      h.nodes[static_cast<std::size_t>(h.num_leaves)];
  const bool top_pair = (first.left == 2 && first.right == 3) ||
                        (first.left == 3 && first.right == 2);
  EXPECT_TRUE(top_pair);
}

TEST(Huffman, DegenerateProbabilitiesAreStable) {
  const DecompModel model(GateType::kAnd, CircuitStyle::kDynamicP);
  // Zeros and ones must not break anything.
  const std::vector<double> p{0.0, 1.0, 0.5, 0.0};
  const DecompTree t = huffman_tree(p, model);
  EXPECT_EQ(t.num_leaves, 4);
  EXPECT_GE(t.internal_cost(model, p), 0.0);
  const DecompTree m = modified_huffman_tree(p, model);
  EXPECT_GE(m.internal_cost(model, p), 0.0);
}

TEST(Huffman, EqualProbabilitiesFavorTheChain) {
  // For p-type AND with identical leaves the optimal tree is the maximally
  // skewed chain: each merge multiplies the running product down, so deep
  // internal nodes are nearly free, whereas a balanced tree keeps several
  // expensive mid-level products alive. Huffman naturally produces the
  // chain (the merged node is always among the two smallest).
  const DecompModel model(GateType::kAnd, CircuitStyle::kDynamicP);
  const std::vector<double> p(8, 0.5);
  const DecompTree h = huffman_tree(p, model);
  EXPECT_EQ(h.height(), 7);  // chain
  const DecompTree o = best_tree_exhaustive(p, model);
  EXPECT_NEAR(h.internal_cost(model, p), o.internal_cost(model, p), 1e-12);
}

TEST(JointProbabilities, CondAndBounds) {
  JointProbabilities j({0.5, 0.4});
  j.set(0, 1, 0.2);
  EXPECT_DOUBLE_EQ(j.prob(0), 0.5);
  EXPECT_DOUBLE_EQ(j.joint(0, 1), 0.2);
  EXPECT_DOUBLE_EQ(j.cond(0, 1), 0.5);  // P(0|1) = 0.2/0.4
  EXPECT_DOUBLE_EQ(j.cond(1, 0), 0.4);  // P(1|0) = 0.2/0.5
}

}  // namespace
}  // namespace minpower
