// Resource governance and deterministic fault injection: recoverable
// limits, graceful degradation ladders, and fault isolation in the
// FlowEngine (the robustness layer of DESIGN.md §9).

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "bdd/bdd.hpp"
#include "decomp/huffman.hpp"
#include "decomp/package_merge.hpp"
#include "flow/flow_engine.hpp"
#include "helpers.hpp"
#include "prob/probability.hpp"
#include "util/budget.hpp"
#include "verify/verify.hpp"

namespace minpower {
namespace {

Network prepared(std::uint64_t seed) {
  // Big enough that a BDD activity pass genuinely exceeds the injected
  // 64-node cap (kInjectedBddNodeLimit).
  Network net = testing::random_network(seed, 8, 24, 4);
  prepare_network(net);
  return net;
}

/// Exact (bitwise) equality of everything except wall times.
void expect_identical(const FlowResult& a, const FlowResult& b) {
  EXPECT_EQ(a.circuit, b.circuit);
  EXPECT_EQ(a.method, b.method);
  EXPECT_EQ(a.area, b.area) << a.circuit << "/" << method_name(a.method);
  EXPECT_EQ(a.delay, b.delay) << a.circuit << "/" << method_name(a.method);
  EXPECT_EQ(a.power_uw, b.power_uw)
      << a.circuit << "/" << method_name(a.method);
  EXPECT_EQ(a.gates, b.gates) << a.circuit << "/" << method_name(a.method);
  EXPECT_EQ(a.tree_activity, b.tree_activity)
      << a.circuit << "/" << method_name(a.method);
  EXPECT_EQ(a.status.state, b.status.state)
      << a.circuit << "/" << method_name(a.method);
  EXPECT_EQ(a.status.retries, b.status.retries)
      << a.circuit << "/" << method_name(a.method);
  EXPECT_EQ(a.status.fallbacks, b.status.fallbacks)
      << a.circuit << "/" << method_name(a.method);
}

TEST(FaultInjectionSpec, ParsesSitesAndOrdinals) {
  const auto fs = parse_fault_injections("bdd-limit:6,deadline:14,,map:0");
  ASSERT_EQ(fs.size(), 3u);
  EXPECT_EQ(fs[0].site, "bdd-limit");
  EXPECT_EQ(fs[0].ordinal, 6);
  EXPECT_EQ(fs[1].site, "deadline");
  EXPECT_EQ(fs[1].ordinal, 14);
  EXPECT_EQ(fs[2].site, "map");
  EXPECT_EQ(fs[2].ordinal, 0);
  EXPECT_TRUE(parse_fault_injections("").empty());
  // Typos must fail fast, not silently disarm a CI fault test.
  EXPECT_THROW(parse_fault_injections("bdd-limit"), std::runtime_error);
  EXPECT_THROW(parse_fault_injections("bdd-limit:"), std::runtime_error);
  EXPECT_THROW(parse_fault_injections(":3"), std::runtime_error);
  EXPECT_THROW(parse_fault_injections("map:-1"), std::runtime_error);
  EXPECT_THROW(parse_fault_injections("map:x"), std::runtime_error);
}

TEST(FaultInjectionSpec, EnvVarIsReadAfresh) {
  ASSERT_EQ(setenv("MINPOWER_INJECT_FAULT", "activity:2", 1), 0);
  auto fs = fault_injections_from_env();
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].site, "activity");
  EXPECT_EQ(fs[0].ordinal, 2);
  ASSERT_EQ(unsetenv("MINPOWER_INJECT_FAULT"), 0);
  EXPECT_TRUE(fault_injections_from_env().empty());
}

TEST(RecoverableLimits, BddLimitMessageReportsCountAndPhase) {
  Budget b;
  b.bdd_node_limit = 20;
  b.label = "tst/activity[1]";
  BudgetScope scope(b);
  BddManager mgr;  // inherits the budget's 20-node cap
  try {
    BddRef f = mgr.var(0);
    for (int i = 1; i < 32; ++i) f = mgr.xor_(f, mgr.var(i));
    FAIL() << "expected ResourceExhausted";
  } catch (const ResourceExhausted& e) {
    EXPECT_EQ(e.site(), "bdd-limit");
    const std::string msg = e.what();
    EXPECT_NE(msg.find("BDD node limit exceeded"), std::string::npos) << msg;
    EXPECT_NE(msg.find("nodes"), std::string::npos) << msg;
    EXPECT_NE(msg.find("(limit 20)"), std::string::npos) << msg;
    EXPECT_NE(msg.find("in phase tst/activity[1]"), std::string::npos) << msg;
  }
}

TEST(RecoverableLimits, UnbudgetedBddLimitIsStillCatchable) {
  BddManager mgr(16);
  try {
    BddRef f = mgr.var(0);
    for (int i = 1; i < 32; ++i) f = mgr.xor_(f, mgr.var(i));
    FAIL() << "expected ResourceExhausted";
  } catch (const ResourceExhausted& e) {
    EXPECT_EQ(e.site(), "bdd-limit");
    EXPECT_NE(std::string(e.what()).find("<unbudgeted>"), std::string::npos);
  }
}

TEST(RecoverableLimits, ExhaustiveGuardThrowsCatchable) {
  const std::vector<double> probs(10, 0.5);  // one past the 9-leaf cap
  const DecompModel model(GateType::kAnd, CircuitStyle::kDynamicP);
  try {
    best_tree_exhaustive(probs, model);
    FAIL() << "expected ResourceExhausted";
  } catch (const ResourceExhausted& e) {
    EXPECT_EQ(e.site(), "exhaustive-tree");
    EXPECT_NE(std::string(e.what()).find("10"), std::string::npos);
  }
}

TEST(RecoverableLimits, ExactOverrunFallsBackToGreedy) {
  const std::vector<double> probs = {0.1, 0.25, 0.4, 0.6, 0.85};
  const DecompModel model(GateType::kAnd, CircuitStyle::kDynamicP);
  const int bound = balanced_height(static_cast<int>(probs.size()));

  reset_bounded_exact_fallbacks();
  const DecompTree exact = bounded_height_minpower_tree(probs, bound, model);
  EXPECT_EQ(bounded_exact_fallbacks(), 0u);

  Budget b;
  b.ordinal = 7;
  b.arm({{"exact-overrun", 7}});
  BudgetScope scope(b);
  reset_bounded_exact_fallbacks();
  const DecompTree greedy = bounded_height_minpower_tree(probs, bound, model);
  EXPECT_EQ(bounded_exact_fallbacks(), 1u);
  // The fallback still honors the contract: same leaves, bound respected,
  // cost no better than the exact optimum.
  EXPECT_EQ(greedy.num_leaves, exact.num_leaves);
  EXPECT_LE(greedy.height(), bound);
  EXPECT_GE(greedy.internal_cost(model, probs) + 1e-12,
            exact.internal_cost(model, probs));
}

TEST(Degradation, McFallbackMapsEquivalentNetlist) {
  // The full decomp-phase fallback path: Monte-Carlo node probabilities
  // feed the decomposition (skipping the BDD pass), MC activities feed the
  // mapper — and the mapped netlist must still realize the subject network.
  const Network net = prepared(91);
  FlowOptions flow;
  NetworkDecompOptions d = decomp_options_for(Method::kII, flow);
  d.node_prob =
      monte_carlo_activities(net, CircuitStyle::kDynamicP, flow.pi_prob1);
  const NetworkDecompResult nd = decompose_network(net, d);

  MapOptions m = map_options_for(Method::kV, flow);
  m.activities = monte_carlo_activities(nd.network, flow.style, flow.pi_prob1);
  const MapResult mapped = map_network(nd.network, standard_library(), m);
  EXPECT_TRUE(verify::mapped_network_equivalent(nd.network, mapped.mapped));
}

TEST(Degradation, InjectedBddBlowupIsolatedAndDeterministic) {
  // 5 circuits; fault ordinal 6 = stage-1 task (circuit 2, group 0), i.e.
  // the decomposition shared by methods I and IV of the third circuit.
  std::vector<Network> nets;
  for (std::uint64_t seed : {81u, 82u, 83u, 84u, 85u}) {
    nets.push_back(prepared(seed));
    nets.back().set_name("c" + std::to_string(seed));
  }
  std::vector<const Network*> circuits;
  for (const Network& n : nets) circuits.push_back(&n);

  EngineOptions clean;
  clean.num_threads = 1;
  FlowEngine eng_clean(standard_library(), clean);
  const auto base = eng_clean.run_suite(circuits);

  auto injected_run = [&](unsigned threads) {
    EngineOptions eo;
    eo.num_threads = threads;
    eo.injections = {{"bdd-limit", 6}};
    FlowEngine eng(standard_library(), eo);
    return eng.run_suite(circuits);
  };
  const auto inj1 = injected_run(1);
  const auto inj8 = injected_run(8);

  ASSERT_EQ(inj1.size(), 5u);
  for (std::size_t c = 0; c < 5; ++c)
    for (std::size_t m = 0; m < 6; ++m) {
      // Thread-count independence, values and statuses alike.
      expect_identical(inj1[c][m], inj8[c][m]);
      const bool hit = (c == 2 && (m == 0 || m == 3));  // I and IV share
      if (!hit) {
        // Fault isolation: every other task is byte-identical to the clean
        // run and still reports ok.
        expect_identical(inj1[c][m], base[c][m]);
        EXPECT_EQ(inj1[c][m].status.state, TaskState::kOk);
      } else {
        const TaskStatus& s = inj1[c][m].status;
        EXPECT_EQ(s.state, TaskState::kDegraded);
        EXPECT_FALSE(s.reason.empty());
        EXPECT_GT(s.retries, 0);
        ASSERT_FALSE(s.fallbacks.empty());
        EXPECT_EQ(s.fallbacks.front(), "mc-activity");
        // Degraded, not dead: the task still produced a mapped result.
        EXPECT_GT(inj1[c][m].gates, 0u);
        EXPECT_GT(inj1[c][m].power_uw, 0.0);
      }
    }
}

TEST(Degradation, DeadlineExpiryFailsTaskWithoutDeadlock) {
  // Stage-2 ordinal 3n + ci*6 + mi with n=2, ci=1, mi=2 → 14: the map task
  // of (circuit 1, method III). The injection pre-expires that task's
  // deadline, so its first checkpoint fails through the real deadline path.
  std::vector<Network> nets = {prepared(86), prepared(87)};
  nets[0].set_name("a");
  nets[1].set_name("b");
  const std::vector<const Network*> circuits = {&nets[0], &nets[1]};

  for (unsigned threads : {1u, 8u}) {
    EngineOptions eo;
    eo.num_threads = threads;
    eo.flow.task_deadline_ms = 60'000.0;  // generous; injection expires it
    eo.injections = {{"deadline", 14}};
    FlowEngine eng(standard_library(), eo);
    const auto rs = eng.run_suite(circuits);  // must return, not hang
    ASSERT_EQ(rs.size(), 2u);
    for (std::size_t c = 0; c < 2; ++c)
      for (std::size_t m = 0; m < 6; ++m) {
        const FlowResult& r = rs[c][m];
        if (c == 1 && m == 2) {
          EXPECT_EQ(r.status.state, TaskState::kFailed) << threads;
          EXPECT_NE(r.status.reason.find("deadline"), std::string::npos)
              << r.status.reason;
          EXPECT_EQ(r.gates, 0u);
        } else {
          EXPECT_EQ(r.status.state, TaskState::kOk)
              << r.circuit << "/" << method_name(r.method);
        }
      }
  }
}

TEST(Degradation, DecompSiteInjectionFailsGroupOnly) {
  // A "decomp" checkpoint fault has no fallback (the ladder only covers
  // resource blowups) — the group fails and both its methods inherit it.
  const Network net = prepared(88);
  EngineOptions eo;
  eo.injections = {{"decomp", 1}};  // group 1 = methods II and V
  FlowEngine eng(standard_library(), eo);
  const auto rs = eng.run_circuit(net);
  ASSERT_EQ(rs.size(), 6u);
  for (std::size_t m = 0; m < 6; ++m) {
    if (m == 1 || m == 4) {
      EXPECT_EQ(rs[m].status.state, TaskState::kFailed);
      EXPECT_NE(rs[m].status.reason.find("decomposition/activity failed"),
                std::string::npos)
          << rs[m].status.reason;
      EXPECT_NE(rs[m].status.reason.find("injected fault"), std::string::npos);
    } else {
      EXPECT_EQ(rs[m].status.state, TaskState::kOk);
    }
  }
}

TEST(Degradation, FlowJsonCarriesStatus) {
  // Seed 83 demonstrably exceeds the injected 64-node cap (it is the hit
  // circuit of InjectedBddBlowupIsolatedAndDeterministic).
  const Network net = prepared(83);
  EngineOptions eo;
  eo.injections = {{"bdd-limit", 0}};  // group 0 → methods I and IV degrade
  FlowEngine eng(standard_library(), eo);
  const auto rs = eng.run_circuit(net);
  std::ostringstream os;
  write_flow_json(os, {rs}, eng.counters(), 1, 1.0,
                  standard_library().name());
  const std::string json = os.str();
  EXPECT_NE(json.find("\"tasks\""), std::string::npos);
  EXPECT_NE(json.find("\"ok\": 4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"degraded\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"failed\": 0"), std::string::npos) << json;
  EXPECT_NE(json.find("\"status\""), std::string::npos);
  EXPECT_NE(json.find("\"state\": \"degraded\""), std::string::npos);
  EXPECT_NE(json.find("mc-activity"), std::string::npos);
  EXPECT_NE(json.find("\"activity_retries\""), std::string::npos);
  EXPECT_NE(json.find("\"exact_fallbacks\""), std::string::npos);
}

}  // namespace
}  // namespace minpower
