// Committed QoR baseline lock (DESIGN.md §11): re-run a prefix of the
// 17-circuit paper suite and hold its QoR cells to
// tests/baselines/flow_suite.json, exactly — the same compare the CI
// qor-regression gate performs, minus wall-time checks (meaningless across
// machines and build types in a unit test).
//
// Regenerate the baseline deliberately after an intentional QoR change:
//   MINPOWER_REGEN_BASELINE=1 ctest -R Baseline
// which runs the *full* suite single-threaded and rewrites the file.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "benchgen/benchgen.hpp"
#include "flow/flow_engine.hpp"
#include "report/baseline.hpp"
#include "trace/metrics.hpp"

namespace minpower {
namespace {

std::string baseline_path() {
  return std::string(MP_TEST_DATA_DIR) + "/baselines/flow_suite.json";
}

/// Prepared prefix of the paper suite (the whole suite for SIZE_MAX).
std::vector<Network> suite_prefix(std::size_t max_circuits) {
  std::vector<Network> nets;
  for (const BenchProfile& p : paper_suite()) {
    if (nets.size() >= max_circuits) break;
    Network net = generate_benchmark(p);
    prepare_network(net);
    nets.push_back(std::move(net));
  }
  return nets;
}

/// Run the engine exactly the way bench_flow does and render the
/// minpower.flow.v1 document, so the committed baseline is interchangeable
/// with a bench_flow report. The registry reset must precede suite
/// preparation: bench_flow's registry covers prep-time BDD work too, and
/// the counters only match if this run counts the same work.
std::string run_suite_json(std::size_t max_circuits) {
  metrics::Registry::global().reset();
  const std::vector<Network> nets = suite_prefix(max_circuits);
  std::vector<const Network*> circuits;
  for (const Network& n : nets) circuits.push_back(&n);
  EngineOptions eo;
  eo.num_threads = 1;
  FlowEngine engine(standard_library(), eo);
  const auto t0 = std::chrono::steady_clock::now();
  const auto results = engine.run_suite(circuits);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  std::ostringstream os;
  write_flow_json(os, results, engine.counters(), engine.effective_threads(),
                  elapsed_ms, standard_library().name());
  return os.str();
}

TEST(Baseline, SuitePrefixMatchesCommittedBaseline) {
  if (std::getenv("MINPOWER_REGEN_BASELINE")) {
    const std::string json = run_suite_json(SIZE_MAX);
    std::ofstream out(baseline_path());
    ASSERT_TRUE(out.good()) << "cannot write " << baseline_path();
    out << json;
    GTEST_SKIP() << "regenerated " << baseline_path();
  }

  report::FlowReportDoc base;
  std::string error;
  ASSERT_TRUE(report::load_flow_report_file(baseline_path(), &base, &error))
      << error
      << " — run with MINPOWER_REGEN_BASELINE=1 to create the baseline";
  ASSERT_EQ(base.cells.size(), base.circuits.size() * 6);
  EXPECT_EQ(base.library, standard_library().name());

  // A 4-circuit prefix keeps the lock cheap enough for sanitizer CI; the
  // full suite runs under MINPOWER_REGEN_BASELINE and in the bench itself.
  constexpr std::size_t kPrefix = 4;
  ASSERT_GE(base.circuits.size(), kPrefix);
  report::FlowReportDoc cand;
  ASSERT_TRUE(report::load_flow_report(run_suite_json(kPrefix), "rerun",
                                       &cand, &error))
      << error;
  for (std::size_t i = 0; i < kPrefix; ++i)
    EXPECT_EQ(cand.circuits[i], base.circuits[i]) << i;

  report::CompareOptions opt;  // QoR exact…
  opt.time_band = -1.0;        // …wall times not comparable across machines
  const report::CompareReport r =
      report::compare_flow_reports(base, cand, opt);

  std::ostringstream verdict;
  report::print_compare(verdict, r);
  EXPECT_FALSE(r.regression())
      << "QoR drifted from tests/baselines/flow_suite.json — if the change "
         "is intentional, regenerate with MINPOWER_REGEN_BASELINE=1\n"
      << verdict.str();
  EXPECT_EQ(r.ok, static_cast<int>(kPrefix * 6));
  EXPECT_EQ(r.skipped, static_cast<int>(base.cells.size() - kPrefix * 6));
  // Subset run: registry totals must be skipped, not diffed.
  EXPECT_FALSE(r.metrics_checked);
}

}  // namespace
}  // namespace minpower
