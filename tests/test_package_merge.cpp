#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <unordered_map>

#include "decomp/huffman.hpp"
#include "decomp/package_merge.hpp"
#include "util/rng.hpp"

namespace minpower {
namespace {

/// O(n²·L) DP oracle for BOUNDED-HEIGHT MINSUM: optimal Σ w_i·l_i over
/// monotone level assignments satisfying Kraft equality with l_i ≤ L.
/// (Weights sorted descending get the shallow levels; standard exchange
/// argument makes the sorted restriction lossless.)
double minsum_dp(std::vector<double> w, int L) {
  std::sort(w.begin(), w.end(), std::greater<>());
  const int n = static_cast<int>(w.size());
  // State: (index i, "width" consumed so far scaled by 2^L).
  // We assign levels in sorted order; level l consumes 2^{L-l} width units.
  const long long total = 1LL << L;
  std::vector<double> prefix(static_cast<std::size_t>(n) + 1, 0.0);
  for (int i = 0; i < n; ++i)
    prefix[static_cast<std::size_t>(i) + 1] =
        prefix[static_cast<std::size_t>(i)] + w[static_cast<std::size_t>(i)];
  // dp[i][x] = min cost assigning first i leaves with width x consumed.
  // x can be large; hash map per i keyed by consumed width.
  std::vector<std::unordered_map<long long, double>> dp(
      static_cast<std::size_t>(n) + 1);
  dp[0][0] = 0.0;
  for (int i = 0; i < n; ++i) {
    for (const auto& [x, c] : dp[static_cast<std::size_t>(i)]) {
      for (int l = 1; l <= L; ++l) {
        const long long nx = x + (1LL << (L - l));
        if (nx > total) continue;
        // Remaining leaves need at least (n-i-1) units of the smallest width.
        if (total - nx < (n - i - 1)) continue;
        const double nc = c + w[static_cast<std::size_t>(i)] * l;
        auto& next_map = dp[static_cast<std::size_t>(i) + 1];
        const auto it = next_map.find(nx);
        if (it == next_map.end() || it->second > nc) next_map[nx] = nc;
      }
    }
  }
  const auto it = dp[static_cast<std::size_t>(n)].find(total);
  return it == dp[static_cast<std::size_t>(n)].end()
             ? std::numeric_limits<double>::infinity()
             : it->second;
}

TEST(BalancedHeight, CeilLog2) {
  EXPECT_EQ(balanced_height(1), 0);
  EXPECT_EQ(balanced_height(2), 1);
  EXPECT_EQ(balanced_height(3), 2);
  EXPECT_EQ(balanced_height(4), 2);
  EXPECT_EQ(balanced_height(5), 3);
  EXPECT_EQ(balanced_height(8), 3);
  EXPECT_EQ(balanced_height(9), 4);
}

TEST(PackageMerge, UnboundedMatchesHuffman) {
  // With L large the length-limited solution equals classic Huffman cost.
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = static_cast<int>(rng.range(2, 9));
    std::vector<double> w(static_cast<std::size_t>(n));
    for (double& x : w) x = rng.uniform(0.0, 10.0);
    const auto levels = length_limited_levels(w, n);  // L = n is unbounded
    double cost = 0.0;
    for (int i = 0; i < n; ++i)
      cost += w[static_cast<std::size_t>(i)] *
              levels[static_cast<std::size_t>(i)];
    // Classic Huffman cost via priority queue.
    std::vector<double> heap = w;
    std::make_heap(heap.begin(), heap.end(), std::greater<>());
    double hcost = 0.0;
    while (heap.size() > 1) {
      std::pop_heap(heap.begin(), heap.end(), std::greater<>());
      const double a = heap.back();
      heap.pop_back();
      std::pop_heap(heap.begin(), heap.end(), std::greater<>());
      const double b = heap.back();
      heap.pop_back();
      hcost += a + b;
      heap.push_back(a + b);
      std::push_heap(heap.begin(), heap.end(), std::greater<>());
    }
    EXPECT_NEAR(cost, hcost, 1e-9) << "n=" << n;
  }
}

TEST(PackageMerge, MatchesDpOracleUnderTightBounds) {
  Rng rng(23);
  for (int trial = 0; trial < 25; ++trial) {
    const int n = static_cast<int>(rng.range(3, 8));
    const int L = static_cast<int>(rng.range(balanced_height(n), n - 1));
    std::vector<double> w(static_cast<std::size_t>(n));
    for (double& x : w) x = rng.uniform(0.1, 10.0);
    const auto levels = length_limited_levels(w, L);
    double cost = 0.0;
    int maxl = 0;
    for (int i = 0; i < n; ++i) {
      cost += w[static_cast<std::size_t>(i)] *
              levels[static_cast<std::size_t>(i)];
      maxl = std::max(maxl, levels[static_cast<std::size_t>(i)]);
    }
    EXPECT_LE(maxl, L);
    EXPECT_NEAR(cost, minsum_dp(w, L), 1e-9) << "n=" << n << " L=" << L;
  }
}

TEST(PackageMerge, LevelsSatisfyKraftEquality) {
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = static_cast<int>(rng.range(2, 10));
    const int L = balanced_height(n) + static_cast<int>(rng.below(3));
    std::vector<double> w(static_cast<std::size_t>(n));
    for (double& x : w) x = rng.uniform(0.0, 5.0);
    const auto levels = length_limited_levels(w, L);
    double kraft = 0.0;
    for (int l : levels) kraft += std::pow(2.0, -l);
    EXPECT_NEAR(kraft, 1.0, 1e-12);
    // And tree_from_levels accepts them.
    const DecompTree t = tree_from_levels(levels);
    EXPECT_LE(t.height(), L);
    EXPECT_EQ(t.num_leaves, n);
  }
}

TEST(TreeFromLevels, BalancedFour) {
  const DecompTree t = tree_from_levels({2, 2, 2, 2});
  EXPECT_EQ(t.height(), 2);
  const auto d = t.leaf_depths();
  for (int x : d) EXPECT_EQ(x, 2);
}

TEST(TreeFromLevels, SkewedThree) {
  const DecompTree t = tree_from_levels({1, 2, 2});
  EXPECT_EQ(t.height(), 2);
}

TEST(BoundedHeightMinpower, RespectsBound) {
  Rng rng(41);
  const DecompModel model(GateType::kAnd, CircuitStyle::kStatic);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = static_cast<int>(rng.range(2, 10));
    const int L = static_cast<int>(rng.range(balanced_height(n), n));
    std::vector<double> p(static_cast<std::size_t>(n));
    for (double& x : p) x = rng.uniform(0.05, 0.95);
    const DecompTree t = bounded_height_minpower_tree(p, L, model);
    EXPECT_LE(t.height(), L);
    EXPECT_EQ(t.num_leaves, n);
  }
}

TEST(BoundedHeightMinpower, LooseBoundMatchesModifiedHuffman) {
  Rng rng(43);
  const DecompModel model(GateType::kAnd, CircuitStyle::kStatic);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = static_cast<int>(rng.range(2, 9));
    std::vector<double> p(static_cast<std::size_t>(n));
    for (double& x : p) x = rng.uniform(0.05, 0.95);
    const DecompTree unbounded = modified_huffman_tree(p, model);
    const DecompTree bounded =
        bounded_height_minpower_tree(p, unbounded.height(), model);
    // The bounded construction admits the Modified Huffman tree as a
    // candidate (and solves small instances exactly), so with a loose bound
    // it can only match or beat it.
    EXPECT_LE(bounded.internal_cost(model, p),
              unbounded.internal_cost(model, p) + 1e-9);
  }
}

TEST(BoundedHeightMinpower, CostDegradesMonotonicallyAsBoundTightens) {
  Rng rng(47);
  const DecompModel model(GateType::kAnd, CircuitStyle::kDynamicP);
  std::vector<double> p(8);
  for (double& x : p) x = rng.uniform(0.05, 0.95);
  double prev = -1.0;
  for (int L = 7; L >= balanced_height(8); --L) {
    const double c =
        bounded_height_minpower_tree(p, L, model).internal_cost(model, p);
    if (prev >= 0.0)
      EXPECT_GE(c, prev - 1e-9) << "tightening the bound cannot help";
    prev = c;
  }
}

TEST(BoundedHeightMinpower, NearOptimalAgainstBoundedExhaustive) {
  // Exhaustive oracle over all merge orders with a height filter.
  const DecompModel model(GateType::kAnd, CircuitStyle::kStatic);
  Rng rng(53);
  for (int trial = 0; trial < 12; ++trial) {
    const int n = 5;
    const int L = 3;
    std::vector<double> p(static_cast<std::size_t>(n));
    for (double& x : p) x = rng.uniform(0.05, 0.95);
    const DecompTree heur = bounded_height_minpower_tree(p, L, model);

    // Brute force: enumerate merge orders, keep best with height ≤ L.
    struct Item {
      double prob;
      int height;
    };
    double best = std::numeric_limits<double>::infinity();
    const std::function<void(std::vector<Item>, double)> rec =
        [&](std::vector<Item> items, double acc) {
          if (items.size() == 1) {
            if (items[0].height <= L) best = std::min(best, acc);
            return;
          }
          for (std::size_t i = 0; i < items.size(); ++i)
            for (std::size_t j = i + 1; j < items.size(); ++j) {
              std::vector<Item> next;
              for (std::size_t k = 0; k < items.size(); ++k)
                if (k != i && k != j) next.push_back(items[k]);
              Item merged;
              merged.prob = model.merge_prob(items[i].prob, items[j].prob);
              merged.height = 1 + std::max(items[i].height, items[j].height);
              if (merged.height > L) continue;
              next.push_back(merged);
              rec(std::move(next), acc + model.activity(merged.prob));
            }
        };
    std::vector<Item> init;
    for (double x : p) init.push_back({x, 0});
    rec(init, 0.0);

    const double hc = heur.internal_cost(model, p);
    EXPECT_GE(hc, best - 1e-9);
    EXPECT_LE(hc, best * 1.25 + 1e-9)
        << "heuristic should stay within 25% of the bounded optimum";
  }
}

}  // namespace
}  // namespace minpower
