// Concurrency stress for the serve layer: many client threads hammer one
// Server with overlapping and repeated circuits, and every response must be
// byte-identical to the canonical one-shot FlowEngine rendering of the same
// BLIF. Repeat submissions must raise the session cache hit counters above
// zero. Set MINPOWER_SERVE_SEED to re-run a failing circuit population.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "flow/flow_engine.hpp"
#include "helpers.hpp"
#include "io/blif.hpp"
#include "library/library.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "trace/metrics.hpp"

namespace minpower {
namespace {

using testing::random_network;

std::uint64_t base_seed() {
  if (const char* env = std::getenv("MINPOWER_SERVE_SEED"))
    return std::strtoull(env, nullptr, 10);
  return 1234;
}

/// The body `minpower serve` must produce for this BLIF: parse + prepare
/// exactly like the server, run a cache-off one-shot engine, render with the
/// serve policy (no metrics, zeroed wall times, canonical counters).
std::string expected_body(const Library& lib, const std::string& blif) {
  BlifError blif_error;
  std::optional<Network> net = try_read_blif_string(blif, &blif_error);
  EXPECT_TRUE(net.has_value()) << blif_error.message;
  prepare_network(*net);
  FlowEngine engine(lib);
  const std::vector<FlowResult> results = engine.run_circuit(*net);
  EngineCounters counters;
  counters.decomp_passes = 3;
  counters.activity_passes = 3;
  counters.map_passes = 6;
  FlowJsonPolicy policy;
  policy.include_metrics = false;
  policy.zero_wall_times = true;
  std::ostringstream body;
  write_flow_json(body, {results}, counters, /*num_threads=*/1,
                  /*elapsed_ms=*/0.0, lib.name(), policy);
  return body.str();
}

TEST(ServeStress, ConcurrentClientsGetByteIdenticalResponses) {
  constexpr std::size_t kCircuits = 4;
  constexpr std::size_t kThreads = 6;
  constexpr std::size_t kRequestsPerThread = 8;

  const Library& lib = standard_library();
  const std::uint64_t seed = base_seed();

  std::vector<std::string> blifs;
  std::vector<std::string> expected;
  for (std::size_t k = 0; k < kCircuits; ++k) {
    Network net = random_network(seed + k);
    blifs.push_back(write_blif_string(net));
    expected.push_back(expected_body(lib, blifs.back()));
  }
  ASSERT_FALSE(::testing::Test::HasFailure());

  serve::ServerOptions so;
  so.workers = 4;
  serve::Server server(lib, so);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  const std::uint16_t port = server.port();

  // Each request uses its own connection: with more client threads than
  // workers, persistent connections would pin every worker to one client.
  std::atomic<std::uint64_t> total_hits{0};
  std::mutex failures_mu;
  std::vector<std::string> failures;
  auto note_failure = [&](std::string message) {
    std::lock_guard<std::mutex> lock(failures_mu);
    failures.push_back(std::move(message));
  };

  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (std::size_t tid = 0; tid < kThreads; ++tid)
    clients.emplace_back([&, tid] {
      for (std::size_t i = 0; i < kRequestsPerThread; ++i) {
        const std::size_t k = (tid * kRequestsPerThread + i) % kCircuits;
        const std::string tag = "thread " + std::to_string(tid) + " request " +
                                std::to_string(i) + " circuit " +
                                std::to_string(k);
        serve::Client c;
        std::string err;
        if (!c.connect("127.0.0.1", port, &err)) {
          note_failure(tag + ": connect: " + err);
          continue;
        }
        serve::Response r;
        if (!c.flow(blifs[k], {}, &r, &err)) {
          note_failure(tag + ": transport: " + err);
          continue;
        }
        if (!r.ok) {
          note_failure(tag + ": server error: " + r.body);
          continue;
        }
        if (r.body != expected[k])
          note_failure(tag + ": body differs from one-shot rendering (" +
                       std::to_string(r.body.size()) + " vs " +
                       std::to_string(expected[k].size()) + " bytes)");
        total_hits.fetch_add(r.hits, std::memory_order_relaxed);
      }
    });
  for (std::thread& t : clients) t.join();

  for (const std::string& f : failures) ADD_FAILURE() << f;
  EXPECT_TRUE(failures.empty());

  // Join the workers before reading stats: a client can consume the whole
  // (kernel-buffered) response before the worker's counters are bumped.
  server.stop();

  // 48 requests over 4 distinct circuits: the vast majority were repeats,
  // so the cross-request cache must have fired.
  EXPECT_GT(total_hits.load(), 0u);
  const SessionStats stats = server.session().stats();
  EXPECT_GT(stats.hits(), 0u);
  // Two clients racing the same cold circuit may both miss, so this is a
  // floor, not an exact count.
  EXPECT_GE(stats.result_misses, 6 * kCircuits);
  EXPECT_GT(metrics::counter("session.result_hits").value(), 0u);

  const serve::ServeStats st = server.stats();
  EXPECT_EQ(st.requests, kThreads * kRequestsPerThread);
  EXPECT_EQ(st.flow_ok, kThreads * kRequestsPerThread);
  EXPECT_EQ(st.errors, 0u);
  EXPECT_EQ(st.busy_rejections, 0u);
}

}  // namespace
}  // namespace minpower
