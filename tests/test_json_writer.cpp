#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/json_writer.hpp"

namespace minpower {
namespace {

TEST(JsonWriter, CompactObjectAndArray) {
  std::ostringstream os;
  {
    JsonWriter w(os, /*pretty=*/false);
    w.begin_object();
    w.field("a", 1);
    w.key("b");
    w.begin_array();
    w.value(true);
    w.value(false);
    w.null();
    w.end_array();
    w.field("c", "x");
    w.end_object();
  }
  EXPECT_EQ(os.str(), R"({"a":1,"b":[true,false,null],"c":"x"})");
}

TEST(JsonWriter, EscapesStrings) {
  std::ostringstream os;
  {
    JsonWriter w(os, false);
    w.begin_object();
    w.field("k\"1", "line\nbreak\ttab\\slash");
    w.field("ctl", std::string("\x01", 1));
    w.end_object();
  }
  EXPECT_EQ(os.str(),
            "{\"k\\\"1\":\"line\\nbreak\\ttab\\\\slash\",\"ctl\":\"\\u0001\"}");
}

TEST(JsonWriter, NumbersRoundTripAndNonFiniteBecomesNull) {
  std::ostringstream os;
  {
    JsonWriter w(os, false);
    w.begin_array();
    w.value(0.5);
    w.value(-3.0);
    w.value(std::nan(""));
    w.value(std::numeric_limits<double>::infinity());
    w.value(std::size_t{18446744073709551615ull});
    w.end_array();
  }
  EXPECT_EQ(os.str(), "[0.5,-3,null,null,18446744073709551615]");
}

TEST(JsonWriter, PrettyPrintsNestedStructure) {
  std::ostringstream os;
  {
    JsonWriter w(os);  // pretty
    w.begin_object();
    w.field("x", 1);
    w.key("y");
    w.begin_array();
    w.value(2);
    w.end_array();
    w.end_object();
  }
  EXPECT_EQ(os.str(), "{\n  \"x\": 1,\n  \"y\": [\n    2\n  ]\n}");
}

TEST(JsonWriter, EmptyContainers) {
  std::ostringstream os;
  {
    JsonWriter w(os, false);
    w.begin_object();
    w.key("o");
    w.begin_object();
    w.end_object();
    w.key("a");
    w.begin_array();
    w.end_array();
    w.end_object();
  }
  EXPECT_EQ(os.str(), R"({"o":{},"a":[]})");
}

}  // namespace
}  // namespace minpower
