// Unit tests for the cross-process observability plane (DESIGN.md §15):
// the span/metrics wire format (trace/wire.hpp) must round-trip exactly,
// snapshot merging must be partition-invariant, the Prometheus exposition
// (trace/prometheus.hpp) must honor the name charset and cumulative-bucket
// contracts, the leveled logger (util/log.hpp) must gate by level, and the
// profiler must rebuild multi-pid traces into per-process forests with
// lifecycle instants and the supervisor-blocking breakdown.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "trace/analysis.hpp"
#include "trace/metrics.hpp"
#include "trace/prometheus.hpp"
#include "trace/trace.hpp"
#include "trace/wire.hpp"
#include "util/log.hpp"

namespace minpower {
namespace {

trace::Event make_event(const char* name, const char* cat, std::int64_t ts,
                        std::int64_t dur, char ph = 'X') {
  trace::Event e;
  e.name = name;
  e.cat = cat;
  e.ts_us = ts;
  e.dur_us = dur;
  e.ph = ph;
  return e;
}

TEST(Wire, EventsRoundTripExactly) {
  std::vector<trace::ThreadEvents> lanes(2);
  lanes[0].tid = 1;
  trace::Event span = make_event("stage1", "engine", 100, 50);
  trace::detail::add_arg(span, "circuit", std::string("c17"));
  trace::detail::add_arg(span, "group", static_cast<long long>(-2));
  trace::detail::add_arg(span, "nodes", static_cast<unsigned long long>(77));
  trace::detail::add_arg(span, "score", 0.5);
  lanes[0].events.push_back(span);
  trace::Event instant = make_event("worker-start", "shard", 120, 0, 'i');
  trace::detail::add_arg(instant, "pid", static_cast<long long>(4242));
  lanes[0].events.push_back(instant);
  lanes[1].tid = 7;
  lanes[1].events.push_back(make_event("map", "map", 10, 3));

  std::ostringstream os;
  trace::write_events_json(os, lanes);
  const std::string wire = os.str();
  // One '\n'-framable line: the pipe protocol ships it as `TRACE <json>`.
  EXPECT_EQ(wire.find('\n'), std::string::npos);

  std::string error;
  const auto parsed = trace::parse_events_json(wire, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_EQ(parsed->size(), 2u);
  const trace::ThreadEvents& t0 = (*parsed)[0];
  EXPECT_EQ(t0.tid, 1);
  ASSERT_EQ(t0.events.size(), 2u);
  const trace::Event& s = t0.events[0];
  EXPECT_EQ(s.name, "stage1");
  EXPECT_EQ(s.cat, "engine");
  EXPECT_EQ(s.ph, 'X');
  EXPECT_EQ(s.ts_us, 100);
  EXPECT_EQ(s.dur_us, 50);
  ASSERT_EQ(s.args.size(), 4u);
  EXPECT_EQ(s.args[0].key, "circuit");
  EXPECT_EQ(s.args[0].s, "c17");
  EXPECT_EQ(s.args[1].i, -2);
  EXPECT_EQ(s.args[2].u, 77u);
  EXPECT_EQ(s.args[3].d, 0.5);
  const trace::Event& i = t0.events[1];
  EXPECT_EQ(i.ph, 'i');
  EXPECT_EQ(i.name, "worker-start");
  EXPECT_EQ((*parsed)[1].tid, 7);
}

TEST(Wire, RejectsMalformedPayloads) {
  std::string error;
  EXPECT_FALSE(trace::parse_events_json("not json", &error).has_value());
  EXPECT_FALSE(trace::parse_events_json("{}", &error).has_value());
  EXPECT_FALSE(trace::parse_metrics_json("[1,2]", &error).has_value());
}

metrics::Snapshot snapshot_of(
    std::vector<std::pair<std::string, std::uint64_t>> counters,
    std::vector<std::pair<std::string, std::uint64_t>> gauges) {
  metrics::Snapshot s;
  s.counters = std::move(counters);
  s.gauges = std::move(gauges);
  return s;
}

TEST(Wire, MetricsRoundTripAndMerge) {
  metrics::Snapshot a = snapshot_of({{"bdd.ite_calls", 100}, {"x", 1}},
                                    {{"bdd.unique_table_peak", 500}});
  metrics::Snapshot::Hist h;
  h.name = "map.matches_per_node";
  h.count = 3;
  h.sum = 9;
  h.buckets = {{0, 1}, {2, 2}};
  a.histograms.push_back(h);

  std::ostringstream os;
  {
    JsonWriter w(os, /*pretty=*/false);
    metrics::write_metrics_json(w, a);
  }
  std::string error;
  const auto back = trace::parse_metrics_json(os.str(), &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->counters, a.counters);
  EXPECT_EQ(back->gauges, a.gauges);
  ASSERT_EQ(back->histograms.size(), 1u);
  EXPECT_EQ(back->histograms[0].buckets, h.buckets);

  // Merge: counters sum, gauges max, histogram buckets add.
  metrics::Snapshot b = snapshot_of({{"bdd.ite_calls", 11}},
                                    {{"bdd.unique_table_peak", 200}});
  metrics::Snapshot::Hist h2 = h;
  h2.count = 1;
  h2.sum = 4;
  h2.buckets = {{4, 1}};
  b.histograms = {h2};
  const metrics::Snapshot merged = trace::merge_snapshots({a, b});
  ASSERT_EQ(merged.counters.size(), 2u);
  EXPECT_EQ(merged.counters[0].first, "bdd.ite_calls");
  EXPECT_EQ(merged.counters[0].second, 111u);
  EXPECT_EQ(merged.gauges[0].second, 500u);  // max, not sum
  ASSERT_EQ(merged.histograms.size(), 1u);
  EXPECT_EQ(merged.histograms[0].count, 4u);
  EXPECT_EQ(merged.histograms[0].sum, 13u);
  const std::vector<std::pair<std::uint64_t, std::uint64_t>> want = {
      {0, 1}, {2, 2}, {4, 1}};
  EXPECT_EQ(merged.histograms[0].buckets, want);

  // Partition invariance: merging {a,b} equals merging {b} then {a} as
  // singleton parts in any split.
  const metrics::Snapshot merged2 =
      trace::merge_snapshots({trace::merge_snapshots({b}), a});
  EXPECT_EQ(merged2.counters, merged.counters);
  EXPECT_EQ(merged2.gauges, merged.gauges);
}

TEST(Prometheus, NameManglingHonorsCharset) {
  EXPECT_EQ(trace::prometheus_name("bdd.ite_calls"), "bdd_ite_calls");
  EXPECT_EQ(trace::prometheus_name("a-b c/d"), "a_b_c_d");
  EXPECT_EQ(trace::prometheus_name("7seg"), "_7seg");
  EXPECT_EQ(trace::prometheus_name(""), "_");
  const std::string n = trace::prometheus_name("weird!@#name");
  for (const char c : n) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    EXPECT_TRUE(ok) << c;
  }
}

TEST(Prometheus, ExpositionFormatAndBucketMonotonicity) {
  metrics::Snapshot s = snapshot_of({{"bdd.ite_calls", 42}},
                                    {{"serve.inflight_peak", 3}});
  metrics::Snapshot::Hist h;
  h.name = "map.matches_per_node";
  h.count = 6;
  h.sum = 30;
  h.buckets = {{0, 1}, {1, 2}, {4, 3}};  // log-2 buckets
  s.histograms.push_back(h);

  std::ostringstream os;
  trace::write_prometheus(os, s);
  const std::string text = os.str();
  EXPECT_NE(text.find("# TYPE bdd_ite_calls_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("bdd_ite_calls_total 42\n"), std::string::npos);
  EXPECT_NE(text.find("serve_inflight_peak 3\n"), std::string::npos);
  // Cumulative bounds: bucket {0}→le="0", [1,1]→le="1", [4,7]→le="7".
  EXPECT_NE(text.find("map_matches_per_node_bucket{le=\"0\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("map_matches_per_node_bucket{le=\"1\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("map_matches_per_node_bucket{le=\"7\"} 6\n"),
            std::string::npos);
  EXPECT_NE(text.find("map_matches_per_node_bucket{le=\"+Inf\"} 6\n"),
            std::string::npos);
  EXPECT_NE(text.find("map_matches_per_node_sum 30\n"), std::string::npos);
  EXPECT_NE(text.find("map_matches_per_node_count 6\n"), std::string::npos);

  // Generic monotonicity scan over every histogram series.
  std::istringstream lines(text);
  std::string line;
  std::string series;
  long long prev = -1;
  while (std::getline(lines, line)) {
    const std::size_t b = line.find("_bucket{le=");
    if (b == std::string::npos) continue;
    const std::string name = line.substr(0, b);
    if (name != series) {
      series = name;
      prev = -1;
    }
    const long long v = std::stoll(line.substr(line.rfind(' ') + 1));
    EXPECT_GE(v, prev) << line;
    prev = v;
  }
}

TEST(Logging, LevelGatingAndOverride) {
  const logging::Level before = logging::level();
  logging::set_level(logging::Level::kWarn);
  EXPECT_TRUE(logging::enabled(logging::Level::kError));
  EXPECT_TRUE(logging::enabled(logging::Level::kWarn));
  EXPECT_FALSE(logging::enabled(logging::Level::kInfo));
  EXPECT_FALSE(logging::enabled(logging::Level::kDebug));
  logging::set_level(logging::Level::kDebug);
  EXPECT_TRUE(logging::enabled(logging::Level::kDebug));
  logging::set_level(before);
  EXPECT_STREQ(logging::level_name(logging::Level::kInfo), "info");
}

TEST(TraceCore, InstantsAndPidLaneExport) {
  trace::clear();
  trace::set_enabled(true);
  const int old_pid = trace::pid();
  trace::set_pid(4242);
  {
    trace::Instant i("worker-start", "shard");
    i.arg("pid", 7);
  }
  { trace::Span s("work", "engine"); }
  trace::set_enabled(false);

  const std::vector<trace::ThreadEvents> lanes = trace::snapshot_events();
  ASSERT_EQ(lanes.size(), 1u);
  ASSERT_EQ(lanes[0].events.size(), 2u);
  const trace::Event& instant = lanes[0].events[0];
  EXPECT_EQ(instant.ph, 'i');
  EXPECT_EQ(instant.name, "worker-start");
  ASSERT_EQ(instant.args.size(), 1u);
  EXPECT_EQ(instant.args[0].i, 7);
  EXPECT_EQ(lanes[0].events[1].ph, 'X');

  // The exporter stamps the configured pid on every event, and renders the
  // instant as a process-scoped mark without a duration.
  std::ostringstream os;
  trace::write_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"pid\":4242"), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"i\",\"s\":\"p\""), std::string::npos) << json;

  trace::set_pid(old_pid);
  trace::clear();

  // Disabled handles never record.
  {
    trace::Instant i("ignored", "shard");
    trace::Span s("ignored", "engine");
    EXPECT_FALSE(i.active());
    EXPECT_FALSE(s.active());
  }
  EXPECT_EQ(trace::num_events(), 0u);
}

TEST(MultiPidProfile, MergedLanesRebuildPerProcessForests) {
  // Synthetic merged trace: a supervisor lane (supervise span + lifecycle
  // instants) and two worker lanes with engine spans, exactly the shape
  // write_shard_trace emits.
  std::vector<trace::ProcessLane> lanes(3);
  lanes[0].pid = 100;
  lanes[0].name = "supervisor (pid 100)";
  trace::ThreadEvents sup;
  sup.tid = 1;
  {
    trace::Event sv = make_event("supervise", "shard", 0, 1000);
    trace::detail::add_arg(sv, "poll_wait_us",
                           static_cast<unsigned long long>(800));
    trace::detail::add_arg(sv, "polls", static_cast<unsigned long long>(20));
    sup.events.push_back(sv);
    trace::Event ws = make_event("worker-start", "shard", 5, 0, 'i');
    trace::detail::add_arg(ws, "pid", static_cast<long long>(200));
    sup.events.push_back(ws);
    sup.events.push_back(make_event("worker-crash", "shard", 400, 0, 'i'));
    sup.events.push_back(make_event("worker-restart", "shard", 450, 0, 'i'));
  }
  lanes[0].threads.push_back(sup);

  for (int wi = 0; wi < 2; ++wi) {
    trace::ProcessLane& lane = lanes[static_cast<std::size_t>(wi) + 1];
    lane.pid = 200 + wi;
    lane.name = "worker-" + std::to_string(wi);
    trace::ThreadEvents te;
    te.tid = 1;
    const std::int64_t base = 100 + 300 * wi;
    trace::Event s1 = make_event("stage1", "engine", base, 40 + 10 * wi);
    trace::detail::add_arg(s1, "circuit", std::string("c") +
                                              std::to_string(wi));
    trace::detail::add_arg(s1, "group", static_cast<long long>(0));
    trace::detail::add_arg(s1, "task", std::string("t1"));
    te.events.push_back(s1);
    trace::Event s2 = make_event("stage2", "engine", base + 60, 100 + 20 * wi);
    trace::detail::add_arg(s2, "circuit", std::string("c") +
                                              std::to_string(wi));
    trace::detail::add_arg(s2, "method", std::string("I"));
    trace::detail::add_arg(s2, "task", std::string("t2"));
    te.events.push_back(s2);
    lane.threads.push_back(te);
  }

  std::ostringstream os;
  trace::write_merged_chrome_trace(os, lanes);

  trace::TraceProfile p;
  std::string error;
  ASSERT_TRUE(trace::analyze_chrome_trace(os.str(), &p, &error)) << error;

  ASSERT_EQ(p.processes.size(), 3u);
  EXPECT_EQ(p.processes[0].pid, 100);
  EXPECT_EQ(p.processes[0].name, "supervisor (pid 100)");
  EXPECT_FALSE(p.processes[0].critical.available);
  EXPECT_EQ(p.processes[1].pid, 200);
  ASSERT_TRUE(p.processes[1].critical.available);
  EXPECT_EQ(p.processes[1].critical.barrier_us, 140u);  // 40 + 100
  ASSERT_TRUE(p.processes[2].critical.available);
  EXPECT_EQ(p.processes[2].critical.barrier_us, 170u);  // 50 + 120
  // Trace-level path is the dominant per-process one.
  EXPECT_EQ(p.critical.barrier_us, 170u);

  // Threads carry their pid; self time within each lane sums to busy.
  ASSERT_EQ(p.threads.size(), 3u);
  for (const trace::ThreadTotals& t : p.threads)
    EXPECT_EQ(t.self_us, t.busy_us);  // no nesting in this synthetic trace

  // Lifecycle instants in timestamp order, attributed to the supervisor.
  ASSERT_EQ(p.lifecycle.size(), 3u);
  EXPECT_EQ(p.lifecycle[0].name, "worker-start");
  EXPECT_EQ(p.lifecycle[0].pid, 100);
  ASSERT_NE(p.lifecycle[0].find_num("pid"), nullptr);
  EXPECT_EQ(*p.lifecycle[0].find_num("pid"), 200.0);
  EXPECT_EQ(p.lifecycle[1].name, "worker-crash");
  EXPECT_EQ(p.lifecycle[2].name, "worker-restart");

  // Supervisor-blocking breakdown from the supervise span args.
  ASSERT_TRUE(p.supervisor.available);
  EXPECT_EQ(p.supervisor.supervise_us, 1000u);
  EXPECT_EQ(p.supervisor.poll_wait_us, 800u);
  EXPECT_EQ(p.supervisor.busy_us(), 200u);
  EXPECT_EQ(p.supervisor.polls, 20u);

  // The JSON document renders without tripping assertions and keeps the
  // v1 top-level contract.
  std::ostringstream json;
  trace::write_profile_json(json, p, "synthetic", 10);
  EXPECT_NE(json.str().find("\"num_processes\": 3"), std::string::npos);
  std::ostringstream text;
  trace::print_profile(text, p, 10);
  EXPECT_NE(text.str().find("process lanes:"), std::string::npos);
  EXPECT_NE(text.str().find("lifecycle events:"), std::string::npos);
  EXPECT_NE(text.str().find("supervisor: supervise"), std::string::npos);
}

}  // namespace
}  // namespace minpower
