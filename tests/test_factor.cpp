#include <gtest/gtest.h>

#include "sop/factor.hpp"
#include "util/rng.hpp"

namespace minpower {
namespace {

Cube lit(int v, bool pos = true) { return Cube::literal(v, pos); }

TEST(Factor, SingleLiteral) {
  const auto f = factor(Cover::literal(2, false));
  EXPECT_EQ(f->kind, FactorNode::Kind::kLiteral);
  EXPECT_EQ(f->var, 2);
  EXPECT_FALSE(f->phase);
  EXPECT_EQ(f->num_literals(), 1);
}

TEST(Factor, SingleCube) {
  Cover f{{lit(0) & lit(1, false) & lit(2)}};
  const auto t = factor(f);
  EXPECT_EQ(t->kind, FactorNode::Kind::kAnd);
  EXPECT_EQ(t->num_literals(), 3);
  EXPECT_TRUE(Cover::equivalent(t->to_cover(), f));
}

TEST(Factor, TextbookCommonLiteral) {
  // ab + ac → a(b + c): 4 SOP literals → 3 factored.
  Cover f{{lit(0) & lit(1), lit(0) & lit(2)}};
  const auto t = factor(f);
  EXPECT_EQ(t->num_literals(), 3);
  EXPECT_TRUE(Cover::equivalent(t->to_cover(), f));
}

TEST(Factor, CommonCubePulledFirst) {
  // abc + abd → ab(c + d): 6 → 4.
  Cover f{{lit(0) & lit(1) & lit(2), lit(0) & lit(1) & lit(3)}};
  const auto t = factor(f);
  EXPECT_EQ(t->num_literals(), 4);
  EXPECT_TRUE(Cover::equivalent(t->to_cover(), f));
}

TEST(Factor, DisjointCubesStaySop) {
  // ab + cd has no shared literal: factored form equals the SOP.
  Cover f{{lit(0) & lit(1), lit(2) & lit(3)}};
  const auto t = factor(f);
  EXPECT_EQ(t->kind, FactorNode::Kind::kOr);
  EXPECT_EQ(t->num_literals(), 4);
}

TEST(Factor, ClassicExample) {
  // ad + bd + cd + e → d(a + b + c) + e: 7 → 5.
  Cover f{{lit(0) & lit(3), lit(1) & lit(3), lit(2) & lit(3), lit(4)}};
  const auto t = factor(f);
  EXPECT_EQ(t->num_literals(), 5);
  EXPECT_TRUE(Cover::equivalent(t->to_cover(), f));
}

TEST(Factor, FactoredLiteralsHelper) {
  Cover f{{lit(0) & lit(1), lit(0) & lit(2)}};
  EXPECT_EQ(factored_literals(f), 3);
  EXPECT_EQ(factored_literals(Cover::zero()), 0);
  EXPECT_EQ(factored_literals(Cover::one()), 0);
}

TEST(Factor, ToStringReadable) {
  Cover f{{lit(0) & lit(1), lit(0) & lit(2)}};
  const auto t = factor(f);
  const std::string s = t->to_string();
  EXPECT_NE(s.find("v0"), std::string::npos);
  EXPECT_NE(s.find("+"), std::string::npos);
}

// Property: factored form ≡ SOP and never has more literals.
class FactorProperty : public ::testing::TestWithParam<int> {};

TEST_P(FactorProperty, EquivalentAndNoWorse) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 577 + 23);
  const int nvars = 6;
  Cover f;
  const int cubes = static_cast<int>(rng.range(1, 7));
  for (int c = 0; c < cubes; ++c) {
    Cube cube;
    for (int v = 0; v < nvars; ++v) {
      const auto r = rng.below(3);
      if (r == 0) cube = cube & lit(v, true);
      if (r == 1) cube = cube & lit(v, false);
    }
    if (cube.is_one()) cube = lit(static_cast<int>(rng.below(nvars)));
    f.add(cube);
  }
  f.normalize();
  if (f.is_zero() || f.is_one()) GTEST_SKIP();
  const auto t = factor(f);
  EXPECT_TRUE(Cover::equivalent(t->to_cover(), f)) << f.to_string();
  EXPECT_LE(t->num_literals(), f.num_literals());
}

INSTANTIATE_TEST_SUITE_P(Random, FactorProperty, ::testing::Range(0, 50));

}  // namespace
}  // namespace minpower
