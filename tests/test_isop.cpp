#include <gtest/gtest.h>

#include "bdd/isop.hpp"
#include "helpers.hpp"
#include "opt/optimize.hpp"
#include "prob/probability.hpp"
#include "util/rng.hpp"

namespace minpower {
namespace {

BddRef bdd_of(BddManager& mgr, const Cover& cover, int nvars) {
  BddRef f = BddManager::kFalse;
  for (const Cube& c : cover.cubes()) {
    BddRef cube = BddManager::kTrue;
    for (int v = 0; v < nvars; ++v) {
      if (c.has_pos(v)) cube = mgr.and_(cube, mgr.var(v));
      if (c.has_neg(v)) cube = mgr.and_(cube, mgr.not_(mgr.var(v)));
    }
    f = mgr.or_(f, cube);
  }
  return f;
}

TEST(Isop, Constants) {
  BddManager mgr;
  EXPECT_TRUE(isop(mgr, BddManager::kFalse).is_zero());
  EXPECT_TRUE(isop(mgr, BddManager::kTrue).is_one());
}

TEST(Isop, SingleVariable) {
  BddManager mgr;
  const BddRef a = mgr.var(0);
  const Cover c = isop(mgr, a);
  EXPECT_EQ(c.num_cubes(), 1u);
  EXPECT_EQ(c.cubes()[0], Cube::literal(0, true));
  const Cover cn = isop(mgr, mgr.not_(a));
  EXPECT_EQ(cn.cubes()[0], Cube::literal(0, false));
}

TEST(Isop, RemovesRedundantCube) {
  // f = a·b + a·!b + b  ≡  a + b: ISOP must find a 2-cube 2-literal cover.
  BddManager mgr;
  const BddRef a = mgr.var(0);
  const BddRef b = mgr.var(1);
  const BddRef f = mgr.or_(a, b);
  const Cover c = isop(mgr, f);
  EXPECT_EQ(c.num_cubes(), 2u);
  EXPECT_EQ(c.num_literals(), 2);
}

TEST(Isop, IntervalFreedom) {
  // L = a·b, U = a: any g with a·b ≤ g ≤ a works; the minimal one is "a·b"
  // or "a". ISOP returns something within the interval.
  BddManager mgr;
  const BddRef a = mgr.var(0);
  const BddRef b = mgr.var(1);
  const Cover g = isop(mgr, mgr.and_(a, b), a);
  // Check containment semantically over all minterms.
  for (std::uint64_t m = 0; m < 4; ++m) {
    const bool lv = ((m & 1) != 0) && ((m & 2) != 0);
    const bool uv = (m & 1) != 0;
    const bool gv = g.eval(m);
    EXPECT_TRUE(!lv || gv);  // L ≤ g
    EXPECT_TRUE(!gv || uv);  // g ≤ U
  }
}

// Property: ISOP of a random cover is equivalent and irredundant.
class IsopProperty : public ::testing::TestWithParam<int> {};

TEST_P(IsopProperty, EquivalentAndIrredundant) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 37 + 3);
  const int nvars = 5;
  Cover f;
  const int cubes = static_cast<int>(rng.range(1, 7));
  for (int c = 0; c < cubes; ++c) {
    Cube cube;
    for (int v = 0; v < nvars; ++v) {
      const auto r = rng.below(3);
      if (r == 0) cube = cube & Cube::literal(v, true);
      if (r == 1) cube = cube & Cube::literal(v, false);
    }
    f.add(cube);
  }
  f.normalize();
  if (f.is_zero() || f.is_one()) GTEST_SKIP();

  BddManager mgr;
  const BddRef fb = bdd_of(mgr, f, nvars);
  Cover g = isop(mgr, fb);
  g.normalize();
  EXPECT_TRUE(Cover::equivalent(f, g)) << f.to_string();
  // ISOP must not be bigger than the (normalized) input.
  EXPECT_LE(g.num_cubes(), f.num_cubes() + 1);

  // Irredundancy: dropping any cube must lose a minterm.
  for (std::size_t drop = 0; drop < g.num_cubes(); ++drop) {
    Cover reduced;
    for (std::size_t i = 0; i < g.num_cubes(); ++i)
      if (i != drop) reduced.add(g.cubes()[i]);
    EXPECT_FALSE(Cover::equivalent(f, reduced))
        << "cube " << drop << " of " << g.to_string() << " is redundant";
  }
}

INSTANTIATE_TEST_SUITE_P(Random, IsopProperty, ::testing::Range(0, 40));

TEST(SimplifyNodes, ShrinksRedundantCovers) {
  Network net("simp");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  // f = a·b + a·!b + !a·b  ≡  a + b (6 literals → 2).
  Cover c{{Cube::literal(0, true) & Cube::literal(1, true),
           Cube::literal(0, true) & Cube::literal(1, false),
           Cube::literal(0, false) & Cube::literal(1, true)}};
  const NodeId f = net.add_node({a, b}, c, "f");
  net.add_po("out", f);
  const int improved = simplify_nodes(net);
  EXPECT_EQ(improved, 1);
  EXPECT_EQ(net.node(f).cover.num_literals(), 2);
  net.check();
}

TEST(SimplifyNodes, PreservesFunction) {
  for (std::uint64_t seed = 700; seed < 712; ++seed) {
    Network net = testing::random_network(seed, 6, 14, 3);
    Network orig = net.duplicate();
    simplify_nodes(net);
    net.check();
    EXPECT_TRUE(networks_equivalent(orig, net)) << seed;
    EXPECT_LE(net.num_literals(), orig.num_literals());
  }
}

}  // namespace
}  // namespace minpower
