#include <gtest/gtest.h>

#include "library/library.hpp"

namespace minpower {
namespace {

TEST(Expr, ParseAndFlatten) {
  const auto e = parse_expr("a*b*c + !d");
  ASSERT_EQ(e->kind, Expr::Kind::kOr);
  ASSERT_EQ(e->child.size(), 2u);
  EXPECT_EQ(e->child[0]->kind, Expr::Kind::kAnd);
  EXPECT_EQ(e->child[0]->child.size(), 3u);
  EXPECT_EQ(e->child[1]->kind, Expr::Kind::kNot);
}

TEST(Expr, PostfixComplementAndParens) {
  const auto e = parse_expr("(a+b)'");
  EXPECT_EQ(e->kind, Expr::Kind::kNot);
  EXPECT_EQ(e->child[0]->kind, Expr::Kind::kOr);
}

TEST(Expr, DoubleNegationCollapses) {
  const auto e = parse_expr("!!a");
  EXPECT_EQ(e->kind, Expr::Kind::kVar);
  EXPECT_EQ(e->var, "a");
}

TEST(Expr, ImplicitAnd) {
  const auto e = parse_expr("a b");
  EXPECT_EQ(e->kind, Expr::Kind::kAnd);
}

TEST(Expr, VariablesInOrder) {
  const auto e = parse_expr("c*a + b*a");
  EXPECT_EQ(e->variables(), (std::vector<std::string>{"c", "a", "b"}));
}

TEST(Expr, Eval) {
  const auto e = parse_expr("a*!b + c");
  const std::vector<std::string> names{"a", "b", "c"};
  EXPECT_TRUE(e->eval(names, {true, false, false}));
  EXPECT_FALSE(e->eval(names, {true, true, false}));
  EXPECT_TRUE(e->eval(names, {false, false, true}));
}

TEST(Pattern, Nand2HasOnePattern) {
  const auto e = parse_expr("!(a*b)");
  const auto ps = generate_patterns(*e, {"a", "b"});
  ASSERT_EQ(ps.size(), 1u);
  EXPECT_EQ(ps[0]->kind, Pattern::Kind::kNand);
  EXPECT_EQ(ps[0]->size(), 1);
  EXPECT_EQ(ps[0]->depth(), 1);
}

TEST(Pattern, InverterPattern) {
  const auto e = parse_expr("!a");
  const auto ps = generate_patterns(*e, {"a"});
  ASSERT_EQ(ps.size(), 1u);
  EXPECT_EQ(ps[0]->kind, Pattern::Kind::kInv);
}

TEST(Pattern, Nand3HasTwoShapes) {
  // !(abc) = NAND(a, AND(b,c)) and NAND(AND(a,b), c) and NAND(AND(a,c), b):
  // unordered splits of 3 children = 3, but symmetric dedup by canonical
  // form keeps structurally distinct ones (leaves are distinct pins, so all
  // 3 remain).
  const auto e = parse_expr("!(a*b*c)");
  const auto ps = generate_patterns(*e, {"a", "b", "c"});
  EXPECT_EQ(ps.size(), 3u);
  for (const auto& p : ps) EXPECT_EQ(p->size(), 3);  // NAND + INV + NAND
}

TEST(Pattern, XorLeafDag) {
  const auto e = parse_expr("a*!b + !a*b");
  const auto ps = generate_patterns(*e, {"a", "b"});
  EXPECT_FALSE(ps.empty());
  // Every pattern mentions both pins (twice each).
  for (const auto& p : ps) EXPECT_GE(p->size(), 3);
}

/// Simulate a pattern over the {NAND, INV} semantics with leaf values.
bool eval_pattern(const Pattern& p, const std::vector<bool>& pins) {
  switch (p.kind) {
    case Pattern::Kind::kLeaf:
      return pins[static_cast<std::size_t>(p.pin)];
    case Pattern::Kind::kInv:
      return !eval_pattern(*p.child[0], pins);
    case Pattern::Kind::kNand:
      return !(eval_pattern(*p.child[0], pins) &&
               eval_pattern(*p.child[1], pins));
  }
  return false;
}

TEST(Pattern, AllStandardLibraryPatternsRealizeTheirGate) {
  const Library& lib = standard_library();
  for (const Gate& g : lib.gates()) {
    if (g.patterns.empty()) continue;
    const auto names = g.function->variables();
    const int k = g.num_inputs();
    for (const auto& pat : g.patterns) {
      for (std::uint64_t m = 0; m < (std::uint64_t{1} << k); ++m) {
        std::vector<bool> in(static_cast<std::size_t>(k));
        for (int i = 0; i < k; ++i)
          in[static_cast<std::size_t>(i)] = (m >> i) & 1;
        EXPECT_EQ(eval_pattern(*pat, in), g.function->eval(names, in))
            << g.name << " pattern " << pat->canonical() << " minterm " << m;
      }
    }
  }
}

TEST(Library, ParseStandard) {
  const Library& lib = standard_library();
  EXPECT_GE(lib.gates().size(), 25u);
  EXPECT_EQ(lib.inverter().name, "inv1");
  EXPECT_EQ(lib.nand2().name, "nand2");
  EXPECT_DOUBLE_EQ(lib.default_load(), 1.0);
}

TEST(Library, FindGate) {
  const Library& lib = standard_library();
  ASSERT_NE(lib.find("aoi21"), nullptr);
  EXPECT_EQ(lib.find("aoi21")->num_inputs(), 3);
  EXPECT_EQ(lib.find("nope"), nullptr);
}

TEST(Library, PinDefaultsFromStar) {
  const Library& lib = standard_library();
  const Gate* n3 = lib.find("nand3");
  ASSERT_NE(n3, nullptr);
  ASSERT_EQ(n3->pins.size(), 3u);
  for (const GatePin& p : n3->pins) {
    EXPECT_DOUBLE_EQ(p.cap, 1.1);
    EXPECT_DOUBLE_EQ(p.intrinsic, 0.72);
    EXPECT_DOUBLE_EQ(p.drive, 0.58);
  }
}

TEST(Library, WorstDelayGrowsWithLoad) {
  const Gate& inv = standard_library().inverter();
  EXPECT_LT(inv.worst_delay(1.0), inv.worst_delay(4.0));
  EXPECT_DOUBLE_EQ(inv.max_drive(), 0.45);
}

TEST(Library, ParseExplicitPins) {
  const std::string text =
      "GATE g 2.5 O=a*!b;\n"
      "PIN a NONINV 1.5 999 0.1 0.2 0.3 0.4\n"
      "PIN b INV 0.5 999 0.5 0.6 0.7 0.8\n";
  const Library lib = Library::parse_genlib(text, "t");
  ASSERT_EQ(lib.gates().size(), 1u);
  const Gate& g = lib.gates()[0];
  ASSERT_EQ(g.pins.size(), 2u);
  EXPECT_EQ(g.pins[0].name, "a");
  EXPECT_DOUBLE_EQ(g.pins[0].cap, 1.5);
  EXPECT_DOUBLE_EQ(g.pins[0].intrinsic, 0.3);  // max(rise, fall) block
  EXPECT_DOUBLE_EQ(g.pins[1].drive, 0.8);
  EXPECT_EQ(g.area, 2.5);
}

TEST(Library, GenlibRoundTrip) {
  const Library& lib = standard_library();
  const Library back = Library::parse_genlib(lib.to_genlib(), "rt");
  ASSERT_EQ(back.gates().size(), lib.gates().size());
  for (std::size_t i = 0; i < lib.gates().size(); ++i) {
    const Gate& a = lib.gates()[i];
    const Gate& b = back.gates()[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_DOUBLE_EQ(a.area, b.area);
    ASSERT_EQ(a.pins.size(), b.pins.size());
    for (std::size_t p = 0; p < a.pins.size(); ++p) {
      EXPECT_DOUBLE_EQ(a.pins[p].cap, b.pins[p].cap);
      EXPECT_DOUBLE_EQ(a.pins[p].intrinsic, b.pins[p].intrinsic);
      EXPECT_DOUBLE_EQ(a.pins[p].drive, b.pins[p].drive);
    }
    // Same function.
    const auto va = a.function->variables();
    const auto vb = b.function->variables();
    ASSERT_EQ(va.size(), vb.size());
    for (std::uint64_t m = 0; m < (std::uint64_t{1} << va.size()); ++m) {
      std::vector<bool> in(va.size());
      for (std::size_t k = 0; k < va.size(); ++k) in[k] = (m >> k) & 1;
      EXPECT_EQ(a.function->eval(va, in), b.function->eval(vb, in)) << a.name;
    }
  }
}

TEST(Library, ExprToStringParsesBack) {
  for (const char* text :
       {"a*b+c", "!(a+b)*c", "a*!b+!a*b", "(a+b)*(c+d)", "!a"}) {
    const auto e = parse_expr(text);
    const auto back = parse_expr(e->to_string());
    const auto vars = e->variables();
    ASSERT_EQ(vars, back->variables());
    for (std::uint64_t m = 0; m < (std::uint64_t{1} << vars.size()); ++m) {
      std::vector<bool> in(vars.size());
      for (std::size_t k = 0; k < vars.size(); ++k) in[k] = (m >> k) & 1;
      EXPECT_EQ(e->eval(vars, in), back->eval(vars, in)) << text;
    }
  }
}

TEST(Library, CoverFromExprMatchesEval) {
  const auto e = parse_expr("a*!b + c*(a+b)");
  const auto vars = e->variables();
  const Cover c = cover_from_expr(*e, vars);
  for (std::uint64_t m = 0; m < (std::uint64_t{1} << vars.size()); ++m) {
    std::vector<bool> in(vars.size());
    std::uint64_t assignment = 0;
    for (std::size_t k = 0; k < vars.size(); ++k) {
      in[k] = (m >> k) & 1;
      if (in[k]) assignment |= std::uint64_t{1} << k;
    }
    EXPECT_EQ(c.eval(assignment), e->eval(vars, in)) << m;
  }
}

TEST(Library, InverterCountInPatterns) {
  // AND2 = INV(NAND2): one pattern of size 2.
  const Gate* and2 = standard_library().find("and2");
  ASSERT_NE(and2, nullptr);
  ASSERT_EQ(and2->patterns.size(), 1u);
  EXPECT_EQ(and2->patterns[0]->size(), 2);
}

}  // namespace
}  // namespace minpower
