// FlowEngine thread-count independence: the six-method flow over 3 seeded
// circuits must produce byte-identical `minpower.flow.v1` JSON at
// --threads 1 and --threads 8 (PR 1's determinism claim, locked in here).
//
// Wall-clock fields (PhaseStats *_ms, the top-level elapsed_ms) are the only
// values that legitimately differ between runs; the test zeroes them and
// fixes the reported thread count before serializing, so any other
// difference — a result value, an ordering, a counter — fails the byte
// comparison.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "flow/flow_engine.hpp"
#include "helpers.hpp"
#include "library/library.hpp"
#include "trace/metrics.hpp"

namespace minpower {
namespace {

void zero_wall_times(std::vector<std::vector<FlowResult>>& per_circuit) {
  for (auto& methods : per_circuit)
    for (FlowResult& r : methods) {
      r.phases.decomp_ms = 0.0;
      r.phases.activity_ms = 0.0;
      r.phases.map_ms = 0.0;
      r.phases.eval_ms = 0.0;
    }
}

std::string flow_json_at_threads(unsigned num_threads,
                                 const std::vector<Network>& circuits) {
  // The flow JSON embeds a snapshot of the (cumulative, global) metrics
  // registry; zero it per run so the byte comparison also asserts that
  // every metrics counter is thread-count independent.
  metrics::Registry::global().reset();
  EngineOptions eo;
  eo.num_threads = num_threads;
  eo.flow.num_threads = num_threads;
  FlowEngine engine(standard_library(), eo);
  std::vector<const Network*> ptrs;
  for (const Network& c : circuits) ptrs.push_back(&c);
  auto results = engine.run_suite(ptrs);
  zero_wall_times(results);
  std::ostringstream os;
  // Fixed thread count and elapsed time: only computed values may differ.
  write_flow_json(os, results, engine.counters(), /*num_threads=*/1,
                  /*elapsed_ms=*/0.0, standard_library().name());
  return os.str();
}

TEST(FlowDeterminism, SixMethodJsonIsThreadCountInvariant) {
  std::vector<Network> circuits;
  for (const std::uint64_t seed : {101u, 202u, 303u}) {
    Network net = testing::random_network(seed, /*num_pi=*/7,
                                          /*num_nodes=*/18, /*num_po=*/4);
    prepare_network(net);
    circuits.push_back(std::move(net));
  }

  const std::string serial = flow_json_at_threads(1, circuits);
  const std::string parallel = flow_json_at_threads(8, circuits);
  EXPECT_EQ(serial, parallel)
      << "flow JSON differs between --threads 1 and --threads 8";

  // And re-running at the same thread count is reproducible, too.
  EXPECT_EQ(parallel, flow_json_at_threads(8, circuits));
}

TEST(FlowDeterminism, RepeatedSerialRunsAreByteIdentical) {
  std::vector<Network> circuits;
  Network net = testing::random_network(404);
  prepare_network(net);
  circuits.push_back(std::move(net));
  EXPECT_EQ(flow_json_at_threads(1, circuits),
            flow_json_at_threads(1, circuits));
}

}  // namespace
}  // namespace minpower
