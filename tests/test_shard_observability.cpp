// Observability tests for real forked sharded runs (DESIGN.md §15, ctest
// label: chaos): a traced `--shards N` run must merge into one Chrome-trace
// document with a pid lane per worker, lifecycle instants on the supervisor
// lane, per-worker critical paths in the profile, and a metrics sidecar
// whose merged counters equal a single-process registry over the same
// suite. Worker aborts must show up as worker-crash/worker-restart instants
// without losing any lane.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "benchgen/benchgen.hpp"
#include "flow/session.hpp"
#include "shard/supervisor.hpp"
#include "trace/analysis.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"
#include "trace/wire.hpp"
#include "util/json_reader.hpp"

namespace minpower {
namespace {

std::vector<Network> suite_prefix(std::size_t max_circuits) {
  std::vector<Network> nets;
  for (const BenchProfile& p : paper_suite()) {
    if (nets.size() >= max_circuits) break;
    Network net = generate_benchmark(p);
    prepare_network(net);
    nets.push_back(std::move(net));
  }
  return nets;
}

std::vector<const Network*> pointers(const std::vector<Network>& nets) {
  std::vector<const Network*> circuits;
  for (const Network& n : nets) circuits.push_back(&n);
  return circuits;
}

shard::ShardRun run_or_die(const std::vector<const Network*>& circuits,
                           const shard::ShardOptions& options) {
  shard::ShardRun run;
  std::string error;
  EXPECT_TRUE(shard::run_sharded_suite(circuits, standard_library(),
                                       FlowOptions{}, options, &run, &error))
      << error;
  return run;
}

/// Scoped tracing: start from an empty buffer, always disable and drop the
/// recorded events on exit so tests never leak spans into each other.
struct TraceGuard {
  TraceGuard() {
    trace::clear();
    trace::set_enabled(true);
    trace::ensure_origin();
  }
  ~TraceGuard() {
    trace::set_enabled(false);
    trace::clear();
  }
};

/// Run the sharded suite traced and return the analyzed merged trace.
trace::TraceProfile traced_profile(
    const std::vector<const Network*>& circuits,
    const shard::ShardOptions& options, shard::ShardRun* run_out) {
  TraceGuard guard;
  *run_out = run_or_die(circuits, options);
  std::ostringstream os;
  shard::write_shard_trace(os, *run_out);
  trace::TraceProfile p;
  std::string error;
  EXPECT_TRUE(trace::analyze_chrome_trace(os.str(), &p, &error)) << error;
  return p;
}

std::size_t count_instants(const trace::TraceProfile& p,
                           const std::string& name) {
  std::size_t n = 0;
  for (const trace::InstantRecord& ir : p.lifecycle)
    if (ir.name == name) ++n;
  return n;
}

TEST(ShardObservability, CleanTracedRunMergesPerWorkerLanes) {
  const std::vector<Network> nets = suite_prefix(3);
  const auto circuits = pointers(nets);

  shard::ShardOptions so;
  so.shards = 3;
  shard::ShardRun run;
  const trace::TraceProfile p = traced_profile(circuits, so, &run);
  EXPECT_EQ(run.stats.worker_crashes, 0u);
  ASSERT_EQ(run.worker_lanes.size(), 3u);

  // One pid lane per worker plus the supervisor's own.
  ASSERT_EQ(p.processes.size(), 4u);
  const int sup_pid = static_cast<int>(::getpid());
  std::set<int> pids;
  std::size_t workers_with_path = 0;
  for (const trace::ProcessTotals& pr : p.processes) {
    EXPECT_TRUE(pids.insert(pr.pid).second) << "duplicate pid lane";
    if (pr.pid == sup_pid) {
      EXPECT_NE(pr.name.find("supervisor"), std::string::npos) << pr.name;
    } else {
      EXPECT_NE(pr.name.find("worker-"), std::string::npos) << pr.name;
      EXPECT_GT(pr.busy_us, 0u);
      // Every worker ran its own engine, so it owns a critical path.
      if (pr.critical.available && pr.critical.barrier_us > 0)
        ++workers_with_path;
    }
  }
  EXPECT_TRUE(pids.count(sup_pid));
  EXPECT_EQ(workers_with_path, 3u);
  // The trace-level path is one of the per-process ones (the dominant).
  ASSERT_TRUE(p.critical.available);

  // Forest invariants per lane: nested children fit inside their parent and
  // never drive self time past total time.
  for (const trace::SpanRecord& s : p.spans) {
    EXPECT_LE(s.self_us, s.dur_us);
    if (s.parent >= 0) {
      const trace::SpanRecord& parent =
          p.spans[static_cast<std::size_t>(s.parent)];
      EXPECT_EQ(parent.pid, s.pid);
      EXPECT_GE(s.ts_us, parent.ts_us);
      EXPECT_LE(s.ts_us + s.dur_us, parent.ts_us + parent.dur_us);
    }
  }
  for (const trace::ThreadTotals& t : p.threads)
    EXPECT_LE(t.self_us, t.busy_us);

  // Lifecycle: one worker-start per spawn, each naming a traced pid lane.
  EXPECT_EQ(count_instants(p, "worker-start"), 3u);
  for (const trace::InstantRecord& ir : p.lifecycle) {
    EXPECT_EQ(ir.pid, sup_pid);  // instants live on the supervisor lane
    if (ir.name != "worker-start") continue;
    const double* pid = ir.find_num("pid");
    ASSERT_NE(pid, nullptr);
    EXPECT_TRUE(pids.count(static_cast<int>(*pid))) << *pid;
  }

  // Supervisor-blocking breakdown comes from the supervise span.
  ASSERT_TRUE(p.supervisor.available);
  EXPECT_GE(p.supervisor.polls, 1u);
  EXPECT_LE(p.supervisor.poll_wait_us, p.supervisor.supervise_us);

  // The metrics sidecar is valid JSON with a parseable merged block.
  std::ostringstream mos;
  shard::write_shard_metrics_json(mos, run, so.shards);
  std::string error;
  const auto doc = parse_json(mos.str(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const JsonValue* reporting = doc->find("workers_reporting");
  ASSERT_NE(reporting, nullptr);
  EXPECT_EQ(static_cast<int>(reporting->number), 3);
  const JsonValue* metrics_block = doc->find("metrics");
  ASSERT_NE(metrics_block, nullptr);
  const auto merged = trace::parse_metrics_value(*metrics_block, &error);
  ASSERT_TRUE(merged.has_value()) << error;
  EXPECT_FALSE(merged->counters.empty());
}

TEST(ShardObservability, WorkerAbortEmitsLifecycleInstantsAndKeepsLanes) {
  const std::vector<Network> nets = suite_prefix(3);
  const auto circuits = pointers(nets);

  shard::ShardOptions so;
  so.shards = 2;
  so.injections = {{"worker-abort", 1}};
  so.backoff_ms = 10;
  shard::ShardRun run;
  const trace::TraceProfile p = traced_profile(circuits, so, &run);

  EXPECT_GE(run.stats.worker_crashes, 1u);
  EXPECT_GE(run.stats.worker_restarts, 1u);
  EXPECT_EQ(run.stats.cells_failed, 0u);

  // The crashed incarnation dies before shipping its spans, but its
  // replacement ships under a fresh pid — so the merged trace still holds
  // at least `shards` worker lanes next to the supervisor's.
  EXPECT_GE(p.processes.size(), so.shards + 1u);

  // The crash and the restart are both visible as instants, and the
  // restart's worker announces itself with one more worker-start.
  EXPECT_GE(count_instants(p, "worker-crash"), 1u);
  EXPECT_GE(count_instants(p, "worker-restart"), 1u);
  EXPECT_GE(count_instants(p, "worker-start"), so.shards + 1u);

  // Crash instants carry the blamed circuit for postmortems.
  for (const trace::InstantRecord& ir : p.lifecycle) {
    if (ir.name != "worker-crash") continue;
    EXPECT_NE(ir.find_str("death"), nullptr);
    EXPECT_NE(ir.find_str("circuit"), nullptr);
  }
}

TEST(ShardObservability, MemLimitKillsBloatedWorkerAndRunRecovers) {
  const std::vector<Network> nets = suite_prefix(3);
  const auto circuits = pointers(nets);

  // Clean reference: no limit, no fault. Cells are deterministic, so the
  // governed run below must reproduce this report byte for byte.
  shard::ShardOptions clean;
  clean.shards = 2;
  const shard::ShardRun ref = run_or_die(circuits, clean);
  std::ostringstream ref_json;
  shard::write_sharded_flow_json(ref_json, ref, clean.shards,
                                 standard_library().name());

  // Governed run: circuit 1's worker balloons by ~160 MiB while a 120 MiB
  // watermark is armed — memory governance (not the heartbeat reaper) must
  // SIGKILL it, and the restarted worker (which skips the fault) must
  // finish the partition.
  shard::ShardOptions so;
  so.shards = 2;
  so.mem_limit_mb = 120;
  so.injections = {{"worker-bloat", 1}};
  so.heartbeat_ms = 100;
  so.backoff_ms = 10;
  shard::ShardRun run;
  std::string raw_trace;
  trace::TraceProfile p;
  {
    TraceGuard guard;
    run = run_or_die(circuits, so);
    std::ostringstream os;
    shard::write_shard_trace(os, run);
    raw_trace = os.str();
    std::string error;
    ASSERT_TRUE(trace::analyze_chrome_trace(raw_trace, &p, &error)) << error;
  }

  // Graceful degradation: the kill is controlled, attributed, recovered.
  EXPECT_GE(run.stats.mem_kills, 1u);
  EXPECT_GE(run.stats.mem_pressure_events, 1u);
  EXPECT_GE(run.stats.worker_restarts, 1u);
  EXPECT_EQ(run.stats.cells_failed, 0u);
  EXPECT_EQ(run.stats.heartbeat_kills, 0u);  // BEATs kept flowing

  // The breach is visible as lifecycle instants with structured args.
  EXPECT_GE(count_instants(p, "mem-pressure"), 1u);
  bool hard_seen = false;
  for (const trace::InstantRecord& ir : p.lifecycle) {
    if (ir.name != "mem-pressure") continue;
    const std::string* level = ir.find_str("level");
    ASSERT_NE(level, nullptr);
    EXPECT_NE(ir.find_num("rss_kb"), nullptr);
    EXPECT_NE(ir.find_num("limit_mb"), nullptr);
    if (*level == "hard") hard_seen = true;
  }
  EXPECT_TRUE(hard_seen);
  EXPECT_GE(count_instants(p, "sigkill"), 1u);
  EXPECT_GE(count_instants(p, "worker-restart"), 1u);

  // MEM records round-trip: the bloated incarnation's kernel-reported peak
  // reached the watermark, and samples landed as ph:"C" counter events on
  // the supervisor lane of the merged trace.
  ASSERT_FALSE(run.worker_memory.empty());
  std::size_t peak = 0;
  for (const shard::WorkerMemory& m : run.worker_memory)
    peak = std::max({peak, m.peak_rss_kb, m.peak_hwm_kb});
  EXPECT_GE(peak, so.mem_limit_mb * 1024);
  EXPECT_NE(raw_trace.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(raw_trace.find("mem.worker-"), std::string::npos);

  // The sidecar's memory block carries the per-incarnation peaks.
  std::ostringstream mos;
  shard::write_shard_metrics_json(mos, run, so.shards);
  std::string error;
  const auto doc = parse_json(mos.str(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const JsonValue* memory = doc->find("memory");
  ASSERT_NE(memory, nullptr);
  const JsonValue* limit = memory->find("limit_mb");
  ASSERT_NE(limit, nullptr);
  EXPECT_EQ(static_cast<std::size_t>(limit->number), so.mem_limit_mb);
  const JsonValue* mem_workers = memory->find("workers");
  ASSERT_NE(mem_workers, nullptr);
  EXPECT_GE(mem_workers->items.size(), run.worker_memory.size());

  // And the canonical merged report is byte-identical to the clean run's.
  std::ostringstream got_json;
  shard::write_sharded_flow_json(got_json, run, so.shards,
                                 standard_library().name());
  EXPECT_EQ(got_json.str(), ref_json.str());
}

TEST(ShardObservability, MergedMetricsEqualSingleProcessRegistry) {
  const std::vector<Network> nets = suite_prefix(3);
  const auto circuits = pointers(nets);

  // Sharded pass first: reset, run, fold worker registries + the
  // supervisor's own (prep ran pre-fork) through the sidecar document.
  metrics::Registry::global().reset();
  shard::ShardOptions so;
  so.shards = 3;
  so.worker_threads = 1;
  const shard::ShardRun run = run_or_die(circuits, so);
  EXPECT_EQ(run.stats.worker_crashes, 0u);
  ASSERT_EQ(run.worker_metrics.size(), 3u);
  std::ostringstream mos;
  shard::write_shard_metrics_json(mos, run, so.shards);

  std::string error;
  const auto doc = parse_json(mos.str(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const JsonValue* metrics_block = doc->find("metrics");
  ASSERT_NE(metrics_block, nullptr);
  const auto merged = trace::parse_metrics_value(*metrics_block, &error);
  ASSERT_TRUE(merged.has_value()) << error;

  // Single-process baseline: same circuits, one at a time through a private
  // session — exactly the path a shard worker runs.
  metrics::Registry::global().reset();
  FlowSession session(standard_library());
  for (const Network* net : circuits) session.run_circuit(*net);
  const metrics::Snapshot single = metrics::Registry::global().snapshot();

  // Counters are event counts over disjoint circuit partitions: their
  // merged sum must equal the single-process registry exactly.
  EXPECT_EQ(merged->counters, single.counters);
}

}  // namespace
}  // namespace minpower
