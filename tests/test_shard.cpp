// Chaos tests for the crash-isolated sharded flow (shard/supervisor.hpp,
// DESIGN.md §14): workers dying by abort, SIGKILL, or silent hang must never
// lose the run — the supervisor restarts them, re-enqueues only their
// unfinished circuits, and the merged report is byte-identical to an
// uninterrupted run. When the restart budget is exhausted the dead worker's
// cells are marked failed (never dropped), and `--resume` over the journal
// recomputes exactly the missing cells, again byte-identically.
//
// These tests fork real worker processes (ctest label: chaos).

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "benchgen/benchgen.hpp"
#include "flow/flow_engine.hpp"
#include "report/baseline.hpp"
#include "shard/journal.hpp"
#include "shard/supervisor.hpp"
#include "util/json_writer.hpp"

namespace minpower {
namespace {

/// Prepared prefix of the paper suite — the same circuits, in the same
/// order, as the committed QoR baseline (tests/baselines/flow_suite.json).
std::vector<Network> suite_prefix(std::size_t max_circuits) {
  std::vector<Network> nets;
  for (const BenchProfile& p : paper_suite()) {
    if (nets.size() >= max_circuits) break;
    Network net = generate_benchmark(p);
    prepare_network(net);
    nets.push_back(std::move(net));
  }
  return nets;
}

std::vector<const Network*> pointers(const std::vector<Network>& nets) {
  std::vector<const Network*> circuits;
  for (const Network& n : nets) circuits.push_back(&n);
  return circuits;
}

/// Canonical byte-comparable rendering of every cell (the policy the
/// sharded report uses: no metrics, zeroed wall times).
std::string canonical_cells(
    const std::vector<std::vector<FlowResult>>& per_circuit) {
  std::ostringstream os;
  JsonWriter w(os, /*pretty=*/false);
  FlowJsonPolicy policy;
  policy.include_metrics = false;
  policy.zero_wall_times = true;
  w.begin_array();
  for (const std::vector<FlowResult>& rs : per_circuit)
    for (const FlowResult& r : rs) write_flow_result_json(w, r, policy);
  w.end_array();
  return os.str();
}

/// One cell rendered canonically (for surviving-cell comparisons).
std::string canonical_cell(const FlowResult& r) {
  std::ostringstream os;
  JsonWriter w(os, /*pretty=*/false);
  FlowJsonPolicy policy;
  policy.include_metrics = false;
  policy.zero_wall_times = true;
  write_flow_result_json(w, r, policy);
  return os.str();
}

shard::ShardRun run_or_die(const std::vector<const Network*>& circuits,
                           const shard::ShardOptions& options,
                           const FlowOptions& flow = {}) {
  shard::ShardRun run;
  std::string error;
  EXPECT_TRUE(shard::run_sharded_suite(circuits, standard_library(), flow,
                                       options, &run, &error))
      << error;
  return run;
}

TEST(Shard, CleanRunMatchesInProcessEngineAndIsShardCountIndependent) {
  const std::vector<Network> nets = suite_prefix(3);
  const auto circuits = pointers(nets);

  EngineOptions eo;
  eo.num_threads = 1;
  FlowEngine engine(standard_library(), eo);
  const auto in_process = engine.run_suite(circuits);

  shard::ShardOptions so;
  so.shards = 2;
  const shard::ShardRun two = run_or_die(circuits, so);
  so.shards = 3;
  const shard::ShardRun three = run_or_die(circuits, so);

  EXPECT_EQ(canonical_cells(two.per_circuit), canonical_cells(in_process));
  EXPECT_EQ(canonical_cells(two.per_circuit),
            canonical_cells(three.per_circuit));
  EXPECT_EQ(two.stats.cells_computed, 18u);
  EXPECT_EQ(two.stats.cells_failed, 0u);
  EXPECT_EQ(two.stats.worker_crashes, 0u);
}

TEST(Shard, WorkerAbortRecoversByteExact) {
  const std::vector<Network> nets = suite_prefix(3);
  const auto circuits = pointers(nets);

  shard::ShardOptions so;
  so.shards = 2;
  const shard::ShardRun clean = run_or_die(circuits, so);

  so.injections = {{"worker-abort", 1}};
  so.backoff_ms = 10;
  const shard::ShardRun crashed = run_or_die(circuits, so);

  EXPECT_GE(crashed.stats.worker_crashes, 1u);
  EXPECT_GE(crashed.stats.worker_restarts, 1u);
  EXPECT_EQ(crashed.stats.cells_failed, 0u);
  EXPECT_EQ(canonical_cells(crashed.per_circuit),
            canonical_cells(clean.per_circuit));
}

TEST(Shard, SigkilledWorkerRecoversAndMatchesCommittedBaseline) {
  const std::vector<Network> nets = suite_prefix(3);
  const auto circuits = pointers(nets);

  shard::ShardOptions so;
  so.shards = 2;
  so.backoff_ms = 10;
  // worker-oom raises SIGKILL inside the worker: death without any exit
  // path, the hardest crash the supervisor must absorb.
  so.injections = {{"worker-oom", 1}};
  const shard::ShardRun run = run_or_die(circuits, so);
  EXPECT_GE(run.stats.worker_crashes, 1u);
  EXPECT_EQ(run.stats.cells_failed, 0u);

  std::ostringstream os;
  shard::write_sharded_flow_json(os, run, so.shards,
                                 standard_library().name());

  report::FlowReportDoc base;
  report::FlowReportDoc cand;
  std::string error;
  ASSERT_TRUE(report::load_flow_report_file(
      std::string(MP_TEST_DATA_DIR) + "/baselines/flow_suite.json", &base,
      &error))
      << error;
  ASSERT_TRUE(report::load_flow_report(os.str(), "sharded", &cand, &error))
      << error;

  report::CompareOptions opt;  // QoR exact…
  opt.time_band = -1.0;        // …wall times zeroed / machine-dependent
  const report::CompareReport r =
      report::compare_flow_reports(base, cand, opt);
  std::ostringstream verdict;
  report::print_compare(verdict, r);
  EXPECT_FALSE(r.regression()) << verdict.str();
  EXPECT_EQ(r.ok, 18);  // every surviving (= all) cell matches the baseline
}

TEST(Shard, HungWorkerIsKilledByHeartbeatTimeoutAndRecovers) {
  const std::vector<Network> nets = suite_prefix(2);
  const auto circuits = pointers(nets);

  shard::ShardOptions so;
  so.shards = 2;
  const shard::ShardRun clean = run_or_die(circuits, so);

  so.injections = {{"worker-hang", 1}};
  so.heartbeat_ms = 50;
  so.heartbeat_timeout_ms = 500;
  so.backoff_ms = 10;
  const shard::ShardRun hung = run_or_die(circuits, so);

  EXPECT_GE(hung.stats.heartbeat_kills, 1u);
  EXPECT_GE(hung.stats.worker_restarts, 1u);
  EXPECT_EQ(hung.stats.cells_failed, 0u);
  EXPECT_EQ(canonical_cells(hung.per_circuit),
            canonical_cells(clean.per_circuit));
}

TEST(Shard, RetryExhaustionFailsCellsThenResumeCompletesByteExact) {
  const std::vector<Network> nets = suite_prefix(3);
  const auto circuits = pointers(nets);
  const std::string journal =
      ::testing::TempDir() + "shard_exhaustion_journal.jsonl";

  shard::ShardOptions so;
  so.shards = 2;
  const shard::ShardRun clean = run_or_die(circuits, so);

  // Every restart re-fires nothing (faults fire once per run), but with a
  // zero retry budget the first crash already exhausts circuit 1.
  so.injections = {{"worker-abort", 1}};
  so.max_circuit_retries = 0;
  so.backoff_ms = 10;
  so.journal_path = journal;
  const shard::ShardRun partial = run_or_die(circuits, so);

  EXPECT_EQ(partial.stats.cells_failed, 6u);
  EXPECT_EQ(partial.stats.cells_computed, 12u);
  for (std::size_t mi = 0; mi < 6; ++mi) {
    const FlowResult& r = partial.per_circuit[1][mi];
    EXPECT_EQ(r.status.state, TaskState::kFailed);
    EXPECT_NE(r.status.reason.find("retries exhausted"), std::string::npos)
        << r.status.reason;
  }
  // Surviving cells are byte-exact despite the crash next door.
  for (const std::size_t ci : {std::size_t{0}, std::size_t{2}})
    for (std::size_t mi = 0; mi < 6; ++mi)
      EXPECT_EQ(canonical_cell(partial.per_circuit[ci][mi]),
                canonical_cell(clean.per_circuit[ci][mi]));

  // The journal holds exactly the 12 completed cells (failed cells are
  // crash-specific and must be recomputed, not replayed).
  shard::Journal j;
  std::string error;
  ASSERT_TRUE(shard::load_journal(journal, &j, &error)) << error;
  EXPECT_EQ(j.cells.size(), 12u);

  // Resume without the fault: only the missing circuit is recomputed and
  // the merged result is byte-identical to the uninterrupted run.
  shard::ShardOptions ro;
  ro.shards = 2;
  ro.resume_path = journal;
  ro.journal_path = journal;
  const shard::ShardRun resumed = run_or_die(circuits, ro);
  EXPECT_EQ(resumed.stats.cells_resumed, 12u);
  EXPECT_EQ(resumed.stats.cells_computed, 6u);
  EXPECT_EQ(resumed.stats.cells_failed, 0u);
  EXPECT_EQ(canonical_cells(resumed.per_circuit),
            canonical_cells(clean.per_circuit));
  std::remove(journal.c_str());
}

TEST(Shard, ResumeRejectsMismatchedSuite) {
  const std::vector<Network> nets = suite_prefix(2);
  const auto circuits = pointers(nets);
  const std::string journal =
      ::testing::TempDir() + "shard_mismatch_journal.jsonl";

  shard::ShardOptions so;
  so.shards = 2;
  so.journal_path = journal;
  run_or_die(circuits, so);

  // Same circuits, different flow options → different suite fingerprint:
  // resuming would splice cells computed under other budgets.
  FlowOptions tightened;
  tightened.bdd_node_limit = 1u << 21;
  shard::ShardOptions ro;
  ro.shards = 2;
  ro.resume_path = journal;
  shard::ShardRun run;
  std::string error;
  EXPECT_FALSE(shard::run_sharded_suite(circuits, standard_library(),
                                        tightened, ro, &run, &error));
  EXPECT_NE(error.find("suite"), std::string::npos) << error;

  // Different circuit list → rejected as well.
  const std::vector<Network> other = suite_prefix(1);
  EXPECT_FALSE(shard::run_sharded_suite(pointers(other), standard_library(),
                                        FlowOptions{}, ro, &run, &error));
  std::remove(journal.c_str());
}

TEST(Shard, TruncatedJournalTailIsToleratedOnResume) {
  const std::vector<Network> nets = suite_prefix(2);
  const auto circuits = pointers(nets);
  const std::string journal =
      ::testing::TempDir() + "shard_torn_journal.jsonl";

  shard::ShardOptions so;
  so.shards = 2;
  const shard::ShardRun clean = run_or_die(circuits, so);
  so.journal_path = journal;
  run_or_die(circuits, so);

  shard::Journal before;
  std::string error;
  ASSERT_TRUE(shard::load_journal(journal, &before, &error)) << error;
  ASSERT_EQ(before.cells.size(), 12u);

  {  // Supervisor died mid-write: a torn final line with no newline.
    std::ofstream out(journal, std::ios::app);
    out << "{\"ci\":0,\"mi\":3,\"cell\":{\"met";
  }
  shard::Journal torn;
  ASSERT_TRUE(shard::load_journal(journal, &torn, &error)) << error;
  EXPECT_EQ(torn.cells.size(), before.cells.size());

  shard::ShardOptions ro;
  ro.shards = 2;
  ro.resume_path = journal;
  const shard::ShardRun resumed = run_or_die(circuits, ro);
  EXPECT_EQ(resumed.stats.cells_resumed, 12u);
  EXPECT_EQ(resumed.stats.cells_computed, 0u);
  EXPECT_EQ(canonical_cells(resumed.per_circuit),
            canonical_cells(clean.per_circuit));
  std::remove(journal.c_str());
}

}  // namespace
}  // namespace minpower
