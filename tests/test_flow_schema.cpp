// Golden-schema test for the machine-readable reports: the key set, key
// order, and value types of `minpower.flow.v1` are locked against
// tests/golden/flow_schema_v1.txt, so any schema drift (added, renamed,
// retyped, or reordered fields) fails CI until the golden file — and the
// consumers documented in DESIGN.md — are updated deliberately.
//
// The skeleton normalizes values away: every scalar collapses to its type
// name, arrays descend into their first element. Regenerate the golden file
// by running this test with MINPOWER_REGEN_SCHEMA=1 and committing the
// updated text.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "flow/flow_engine.hpp"
#include "helpers.hpp"
#include "library/library.hpp"
#include "util/json_reader.hpp"
#include "verify/verify.hpp"

namespace minpower {
namespace {

void append_skeleton(const JsonValue& v, const std::string& path,
                     std::string& out) {
  switch (v.kind) {
    case JsonValue::Kind::kObject:
      out += path + ": object\n";
      for (const auto& [key, child] : v.members)
        append_skeleton(child, path + "." + key, out);
      break;
    case JsonValue::Kind::kArray:
      out += path + ": array\n";
      if (!v.items.empty()) append_skeleton(v.items.front(), path + "[]", out);
      break;
    default:
      out += path + ": " + v.kind_name() + "\n";
      break;
  }
}

std::string schema_skeleton(const std::string& json) {
  std::string error;
  const auto parsed = parse_json(json, &error);
  EXPECT_TRUE(parsed.has_value()) << "invalid JSON: " << error;
  if (!parsed) return {};
  std::string out;
  append_skeleton(*parsed, "$", out);
  return out;
}

std::string flow_json() {
  Network net = testing::random_network(55, /*num_pi=*/6, /*num_nodes=*/14,
                                        /*num_po=*/3);
  prepare_network(net);
  FlowEngine engine(standard_library());
  const std::vector<std::vector<FlowResult>> results{
      engine.run_circuit(net)};
  std::ostringstream os;
  write_flow_json(os, results, engine.counters(), 1, 12.5,
                  standard_library().name());
  return os.str();
}

std::string golden_path() {
  return std::string(MP_TEST_DATA_DIR) + "/golden/flow_schema_v1.txt";
}

TEST(FlowSchema, MatchesGoldenSkeleton) {
  const std::string actual = schema_skeleton(flow_json());
  ASSERT_FALSE(actual.empty());

  if (std::getenv("MINPOWER_REGEN_SCHEMA")) {
    std::ofstream out(golden_path());
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path();
    out << actual;
    GTEST_SKIP() << "regenerated " << golden_path();
  }

  std::ifstream in(golden_path());
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path()
                         << " — run with MINPOWER_REGEN_SCHEMA=1 to create";
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), actual)
      << "minpower.flow.v1 schema drifted; if intentional, regenerate the "
         "golden file with MINPOWER_REGEN_SCHEMA=1 and update DESIGN.md";
}

TEST(FlowSchema, RequiredTopLevelFieldsAndTypes) {
  // Redundant with the golden file but self-describing: the contract the
  // flow-bench consumers rely on.
  std::string error;
  const auto parsed = parse_json(flow_json(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const JsonValue& root = *parsed;
  ASSERT_EQ(root.kind, JsonValue::Kind::kObject);

  const JsonValue* schema = root.find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->string, "minpower.flow.v1");

  for (const char* key : {"library"}) {
    const JsonValue* v = root.find(key);
    ASSERT_NE(v, nullptr) << key;
    EXPECT_EQ(v->kind, JsonValue::Kind::kString) << key;
  }
  for (const char* key : {"num_threads", "elapsed_ms"}) {
    const JsonValue* v = root.find(key);
    ASSERT_NE(v, nullptr) << key;
    EXPECT_EQ(v->kind, JsonValue::Kind::kNumber) << key;
  }

  const JsonValue* metrics = root.find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_EQ(metrics->kind, JsonValue::Kind::kObject);
  for (const char* key : {"counters", "gauges", "histograms"}) {
    const JsonValue* arr = metrics->find(key);
    ASSERT_NE(arr, nullptr) << key;
    ASSERT_EQ(arr->kind, JsonValue::Kind::kArray) << key;
    ASSERT_FALSE(arr->items.empty()) << key << " empty after a full flow run";
    const JsonValue& first = arr->items.front();
    ASSERT_NE(first.find("name"), nullptr) << key;
    EXPECT_EQ(first.find("name")->kind, JsonValue::Kind::kString) << key;
  }
  // A flow run must have counted BDD work and per-site checkpoints.
  const JsonValue* counters = metrics->find("counters");
  bool saw_bdd = false;
  bool saw_checkpoint = false;
  for (const JsonValue& c : counters->items) {
    const std::string& name = c.find("name")->string;
    if (name == "bdd.unique_lookups" && c.find("value")->number > 0)
      saw_bdd = true;
    if (name.rfind("budget.checkpoint.", 0) == 0 &&
        c.find("value")->number > 0)
      saw_checkpoint = true;
  }
  EXPECT_TRUE(saw_bdd) << "bdd.unique_lookups missing or zero";
  EXPECT_TRUE(saw_checkpoint) << "no budget.checkpoint.* counter recorded";

  const JsonValue* circuits = root.find("circuits");
  ASSERT_NE(circuits, nullptr);
  ASSERT_EQ(circuits->kind, JsonValue::Kind::kArray);
  ASSERT_FALSE(circuits->items.empty());
  const JsonValue* methods = circuits->items.front().find("methods");
  ASSERT_NE(methods, nullptr);
  ASSERT_EQ(methods->items.size(), 6u) << "six methods per circuit";
  for (const JsonValue& m : methods->items) {
    for (const char* key : {"area", "delay_ns", "power_uw", "gates"}) {
      const JsonValue* v = m.find(key);
      ASSERT_NE(v, nullptr) << key;
      EXPECT_EQ(v->kind, JsonValue::Kind::kNumber) << key;
    }
    ASSERT_NE(m.find("phases"), nullptr);
  }
}

TEST(FlowSchema, VerifyReportParsesAsJson) {
  verify::VerifyOptions o;
  o.seed = 8;
  o.count = 2;
  o.mc_samples = 100;
  const verify::VerifyReport r = verify::run_verification(o);
  std::ostringstream os;
  verify::write_verify_json(os, o, r);
  std::string error;
  const auto parsed = parse_json(os.str(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const JsonValue* schema = parsed->find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->string, "minpower.verify.v1");
  ASSERT_NE(parsed->find("checks"), nullptr);
  EXPECT_EQ(parsed->find("checks")->kind, JsonValue::Kind::kObject);
}

TEST(JsonReader, RejectsMalformedDocuments) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "{\"a\" 1}", "tru", "\"unterminated",
        "{} extra", "[1 2]", "nul"}) {
    std::string error;
    EXPECT_FALSE(parse_json(bad, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(JsonReader, ParsesEscapesAndNumbers) {
  const auto v = parse_json(
      "{\"s\": \"a\\n\\\"b\\\"\", \"x\": -1.5e3, \"t\": true, "
      "\"n\": null, \"arr\": [1, 2, 3]}");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->find("s")->string, "a\n\"b\"");
  EXPECT_EQ(v->find("x")->number, -1500.0);
  EXPECT_TRUE(v->find("t")->boolean);
  EXPECT_EQ(v->find("n")->kind, JsonValue::Kind::kNull);
  EXPECT_EQ(v->find("arr")->items.size(), 3u);
}

}  // namespace
}  // namespace minpower
