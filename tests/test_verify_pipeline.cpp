// The `verify`-labeled differential sweep: ≥200 seeded random circuits
// through every oracle (ctest -L verify). The base seed comes from
// MINPOWER_VERIFY_SEED when set (CI derives it from the date), so each
// nightly run explores fresh seeds while any failure stays one-command
// reproducible: every reported failure names the exact seed to re-run with
// `minpower verify --seed <seed> --count 1`.
//
// The sweep is split into four shards so `ctest -j` runs them concurrently.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "verify/verify.hpp"

namespace minpower {
namespace {

constexpr int kTotalSeeds = 200;
constexpr int kShards = 4;

std::uint64_t base_seed() {
  if (const char* env = std::getenv("MINPOWER_VERIFY_SEED"))
    return std::strtoull(env, nullptr, 10);
  return 20260806;  // fixed default: deterministic local runs
}

void run_shard(int shard) {
  verify::VerifyOptions o;
  o.seed = base_seed() + static_cast<std::uint64_t>(
                             shard * (kTotalSeeds / kShards));
  o.count = kTotalSeeds / kShards;
  const verify::VerifyReport r = verify::run_verification(o);
  EXPECT_EQ(r.circuits, o.count);
  for (const verify::VerifyFailure& f : r.failures)
    ADD_FAILURE() << "[" << f.check << "] " << f.detail
                  << "\n  reproduce: minpower verify --seed " << f.seed
                  << " --count 1";
}

TEST(VerifyPipeline, Shard0) { run_shard(0); }
TEST(VerifyPipeline, Shard1) { run_shard(1); }
TEST(VerifyPipeline, Shard2) { run_shard(2); }
TEST(VerifyPipeline, Shard3) { run_shard(3); }

}  // namespace
}  // namespace minpower
